package dshard

// Frame and payload codecs. A frame is a 4-byte big-endian payload
// length followed by the payload; payload[0] is the frame type byte.
// Integers are varints (unsigned for seqs/counts, zigzag for
// timestamps), strings are uvarint-length-prefixed bytes. Encoding is
// append-style into a reused scratch buffer, so the steady-state hot
// path (edge batches, match streams) performs no per-frame
// allocations beyond the strings themselves on decode.

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync/atomic"

	"streamgraph/internal/stream"
)

// Conn wraps one protocol connection: buffered frame IO over a
// net.Conn (or any ReadWriteCloser). It is not safe for concurrent
// writers or concurrent readers; the protocol's single-writer /
// single-reader split (one goroutine sending, one receiving) is the
// intended use.
type Conn struct {
	rwc io.ReadWriteCloser
	br  *bufio.Reader
	bw  *bufio.Writer

	// Write-side and read-side scratch are separate: the intended use
	// runs one sending and one receiving goroutine per connection, and
	// they must never share a buffer.
	wbuf []byte
	whdr [4]byte
	rbuf []byte
	rhdr [4]byte

	// Wire accounting, maintained by the frame layer itself so every
	// protocol user gets it for free. Atomics: written by the
	// single-writer/single-reader pair, read by metrics scrapes on
	// arbitrary goroutines. bytes* count what actually crossed the
	// wire; rawBytes* count the logical (uncompressed) payloads, so
	// rawBytes/bytes is the compression ratio.
	bytesIn, bytesOut       atomic.Int64
	rawBytesIn, rawBytesOut atomic.Int64
	framesIn, framesOut     atomic.Int64

	// Negotiated v2 state (Negotiate): the per-direction string
	// dictionaries and the flate codec scratch. All nil/false on a v1
	// connection. dict and the write-side flate state belong to the
	// writer goroutine, tbl and the read-side state to the reader.
	caps     uint64
	dict     *strDict  // encode side (our outgoing frames)
	tbl      *strTable // decode side (the peer's incoming frames)
	compress bool
	fw       *flate.Writer
	cw       appendWriter // fw's sink: the compressed-frame scratch
	cbuf     []byte       // read side: raw compressed payload scratch
	fr       io.ReadCloser
	frSrc    bytes.Reader
}

// appendWriter is a minimal io.Writer appending into a reusable byte
// slice, the flate writer's sink (bytes.Buffer would re-allocate its
// window on every Reset).
type appendWriter struct{ b []byte }

// Write appends p.
func (w *appendWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// ConnStats is a point-in-time snapshot of one connection's wire
// accounting. Byte counts include the 4-byte frame headers.
type ConnStats struct {
	// BytesIn and FramesIn count received frames; BytesOut and
	// FramesOut count sent frames. Byte counts are post-compression —
	// what actually crossed the wire.
	BytesIn, BytesOut   int64
	FramesIn, FramesOut int64
	// RawBytesIn and RawBytesOut count the same frames before
	// compression (identical to BytesIn/BytesOut on a connection
	// without CapCompress); Bytes/RawBytes is the compression ratio.
	RawBytesIn, RawBytesOut int64
	// DictEntriesOut/DictBytesOut size the encode-side string
	// dictionary (entries interned, string bytes held);
	// DictEntriesIn/DictBytesIn the decode side. Zero without CapDict.
	DictEntriesOut, DictBytesOut int64
	DictEntriesIn, DictBytesIn   int64
}

// Stats snapshots the connection's cumulative wire counters. Safe to
// call from any goroutine at any time.
func (cn *Conn) Stats() ConnStats {
	st := ConnStats{
		BytesIn:     cn.bytesIn.Load(),
		BytesOut:    cn.bytesOut.Load(),
		FramesIn:    cn.framesIn.Load(),
		FramesOut:   cn.framesOut.Load(),
		RawBytesIn:  cn.rawBytesIn.Load(),
		RawBytesOut: cn.rawBytesOut.Load(),
	}
	if cn.dict != nil {
		st.DictEntriesOut = cn.dict.entries.Load()
		st.DictBytesOut = cn.dict.bytes.Load()
	}
	if cn.tbl != nil {
		st.DictEntriesIn = cn.tbl.entries.Load()
		st.DictBytesIn = cn.tbl.bytes.Load()
	}
	return st
}

// Negotiate applies a granted capability set to the connection, in
// both directions. Call it exactly once, after the hello/hello-ack
// exchange and before any other frame is written or read: the
// handshake frames themselves always use the plain v1 encoding.
func (cn *Conn) Negotiate(caps uint64) {
	cn.caps = caps
	if caps&CapDict != 0 {
		cn.dict = newStrDict()
		cn.tbl = &strTable{}
	}
	cn.compress = caps&CapCompress != 0
}

// NewConn wraps an established connection.
func NewConn(rwc io.ReadWriteCloser) *Conn {
	return &Conn{
		rwc: rwc,
		br:  bufio.NewReaderSize(rwc, 64<<10),
		bw:  bufio.NewWriterSize(rwc, 64<<10),
	}
}

// Dial connects to a remote shard worker.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// Close closes the underlying connection.
func (cn *Conn) Close() error { return cn.rwc.Close() }

// frameCompressed marks a compressed frame in the 4-byte length
// header. MaxFrame is far below 2^31, so the bit is always free; a v1
// peer decoding a compressed header would see an over-MaxFrame length
// and fail cleanly (compressed frames are only ever sent after
// CapCompress is negotiated).
const frameCompressed = 1 << 31

// compressThreshold is the minimum payload size worth deflating; tiny
// control and ack frames are sent as-is.
const compressThreshold = 512

// writeFrame sends one framed payload and flushes. On a CapCompress
// connection, payloads at or above compressThreshold are flate-
// compressed when that actually shrinks them.
func (cn *Conn) writeFrame(payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("dshard: frame of %d bytes exceeds MaxFrame", len(payload))
	}
	body, hdr := payload, uint32(len(payload))
	if cn.compress && len(payload) >= compressThreshold {
		if c, err := cn.deflate(payload); err == nil && len(c) < len(payload) {
			body, hdr = c, uint32(len(c))|frameCompressed
		}
	}
	binary.BigEndian.PutUint32(cn.whdr[:], hdr)
	if _, err := cn.bw.Write(cn.whdr[:]); err != nil {
		return err
	}
	if _, err := cn.bw.Write(body); err != nil {
		return err
	}
	if err := cn.bw.Flush(); err != nil {
		return err
	}
	cn.bytesOut.Add(int64(len(body)) + 4)
	cn.rawBytesOut.Add(int64(len(payload)) + 4)
	cn.framesOut.Add(1)
	return nil
}

// deflate compresses p into the connection's reusable scratch buffer.
func (cn *Conn) deflate(p []byte) ([]byte, error) {
	cn.cw.b = cn.cw.b[:0]
	if cn.fw == nil {
		// BestSpeed: the frames are short-lived loopback/LAN traffic;
		// the dictionary already removed most redundancy.
		fw, err := flate.NewWriter(&cn.cw, flate.BestSpeed)
		if err != nil {
			return nil, err
		}
		cn.fw = fw
	} else {
		cn.fw.Reset(&cn.cw)
	}
	if _, err := cn.fw.Write(p); err != nil {
		return nil, err
	}
	if err := cn.fw.Close(); err != nil {
		return nil, err
	}
	return cn.cw.b, nil
}

// ReadFrame reads one frame and returns its type byte and payload
// body (the payload minus the type byte). The body aliases an
// internal buffer valid until the next ReadFrame.
func (cn *Conn) ReadFrame() (byte, []byte, error) {
	if _, err := io.ReadFull(cn.br, cn.rhdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(cn.rhdr[:])
	compressed := n&frameCompressed != 0
	n &^= frameCompressed
	if n == 0 || n > MaxFrame {
		return 0, nil, fmt.Errorf("dshard: bad frame length %d", n)
	}
	var b []byte
	if compressed {
		if !cn.compress {
			return 0, nil, fmt.Errorf("dshard: compressed frame without negotiated compression")
		}
		if cap(cn.cbuf) < int(n) {
			cn.cbuf = make([]byte, n)
		}
		c := cn.cbuf[:n]
		if _, err := io.ReadFull(cn.br, c); err != nil {
			return 0, nil, err
		}
		var err error
		if b, err = cn.inflate(c); err != nil {
			return 0, nil, fmt.Errorf("dshard: corrupt compressed frame: %w", err)
		}
		if len(b) == 0 {
			return 0, nil, fmt.Errorf("dshard: empty compressed frame")
		}
	} else {
		if cap(cn.rbuf) < int(n) {
			cn.rbuf = make([]byte, n)
		}
		b = cn.rbuf[:n]
		if _, err := io.ReadFull(cn.br, b); err != nil {
			return 0, nil, err
		}
	}
	cn.bytesIn.Add(int64(n) + 4)
	cn.rawBytesIn.Add(int64(len(b)) + 4)
	cn.framesIn.Add(1)
	return b[0], b[1:], nil
}

// inflate decompresses c into the connection's reusable read buffer,
// hard-bounded at MaxFrame so a hostile compressed payload cannot
// drive an unbounded allocation.
func (cn *Conn) inflate(c []byte) ([]byte, error) {
	cn.frSrc.Reset(c)
	if cn.fr == nil {
		cn.fr = flate.NewReader(&cn.frSrc)
	} else if err := cn.fr.(flate.Resetter).Reset(&cn.frSrc, nil); err != nil {
		return nil, err
	}
	if cap(cn.rbuf) < 4<<10 {
		cn.rbuf = make([]byte, 4<<10)
	}
	total := 0
	for {
		if total == cap(cn.rbuf) {
			if cap(cn.rbuf) >= MaxFrame {
				// Full at the limit: legal only if the stream ends
				// exactly here.
				var probe [1]byte
				for {
					n, err := cn.fr.Read(probe[:])
					if n > 0 {
						return nil, fmt.Errorf("decompressed frame exceeds MaxFrame")
					}
					if err == io.EOF {
						return cn.rbuf[:total], nil
					}
					if err != nil {
						return nil, err
					}
				}
			}
			grown := make([]byte, min(2*cap(cn.rbuf), MaxFrame))
			copy(grown, cn.rbuf[:total])
			cn.rbuf = grown
		}
		n, err := cn.fr.Read(cn.rbuf[total:cap(cn.rbuf)])
		total += n
		if err == io.EOF {
			return cn.rbuf[:total], nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// ---- primitive append/decode helpers ----

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendEdge(b []byte, e stream.Edge) []byte {
	b = appendString(b, e.Src)
	b = appendString(b, e.SrcLabel)
	b = appendString(b, e.Dst)
	b = appendString(b, e.DstLabel)
	b = appendString(b, e.Type)
	return binary.AppendVarint(b, e.TS)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// dec is a cursor over one payload; the first decode error sticks and
// every subsequent read returns zero values. A non-nil tbl switches
// string decoding to the v2 dictionary form and edge lists to
// within-frame delta timestamps (see dict.go).
type dec struct {
	b   []byte
	err error
	tbl *strTable
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("dshard: truncated or corrupt %s", what)
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) bool_() bool { return d.uvarint() != 0 }

func (d *dec) string_() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n {
		d.fail("string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// count decodes a list length and rejects any count that could not
// possibly fit in the remaining payload given the element type's
// minimum encoded size — so a hostile count prefix can never drive an
// allocation larger than (frame size / minSize) elements. The bound is
// computed by division so a huge count cannot overflow it.
func (d *dec) count(what string, minSize uint64) int {
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.b))/minSize {
		d.fail(what + " count")
	}
	return int(n)
}

// Minimum encoded element sizes for count bounds: an edge is five
// length-prefixed strings plus a timestamp varint; a binding is two
// strings; a match edge is an index, three strings and a timestamp; a
// string and a leaf are at least their own length prefix.
const (
	minEdgeSize      = 6
	minStringSize    = 1
	minLeafSize      = 1
	minBindingSize   = 2
	minMatchEdgeSize = 5
)

func (d *dec) edge() stream.Edge {
	return stream.Edge{
		Src: d.str(), SrcLabel: d.str(),
		Dst: d.str(), DstLabel: d.str(),
		Type: d.str(), TS: d.varint(),
	}
}

func (d *dec) strings() []string {
	n := d.count("string list", minStringSize)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}

func (d *dec) edges() []stream.Edge {
	n := d.count("edge list", minEdgeSize)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]stream.Edge, n)
	prev := int64(0)
	for i := range out {
		out[i] = d.edge()
		if d.tbl != nil {
			// v2: timestamps are deltas within the list (edges arrive
			// near-monotone, so most deltas fit one byte).
			out[i].TS += prev
			prev = out[i].TS
		}
	}
	return out
}

func appendStrings(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func appendEdges(b []byte, es []stream.Edge) []byte {
	b = binary.AppendUvarint(b, uint64(len(es)))
	for _, e := range es {
		b = appendEdge(b, e)
	}
	return b
}

// appendStringsW is appendStrings under the connection's negotiated
// encoding (dictionary references on a CapDict connection).
func (cn *Conn) appendStringsW(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = cn.appendStr(b, s)
	}
	return b
}

// appendEdgesW is appendEdges under the connection's negotiated
// encoding: dictionary references for the five strings and
// within-list delta timestamps on a CapDict connection.
func (cn *Conn) appendEdgesW(b []byte, es []stream.Edge) []byte {
	if cn.dict == nil {
		return appendEdges(b, es)
	}
	b = binary.AppendUvarint(b, uint64(len(es)))
	prev := int64(0)
	for _, e := range es {
		b = cn.appendStr(b, e.Src)
		b = cn.appendStr(b, e.SrcLabel)
		b = cn.appendStr(b, e.Dst)
		b = cn.appendStr(b, e.DstLabel)
		b = cn.appendStr(b, e.Type)
		b = binary.AppendVarint(b, e.TS-prev)
		prev = e.TS
	}
	return b
}

// ---- message writers ----

// WriteHello sends the connection-opening frame. A v2 hello carries
// the offered capability bits as a trailing field; a legacy hello is
// byte-identical to what a v1 client sends.
func (cn *Conn) WriteHello(h Hello) error {
	b := append(cn.wbuf[:0], FrameHello)
	b = binary.AppendUvarint(b, h.Version)
	b = binary.AppendUvarint(b, uint64(h.Slot))
	b = binary.AppendVarint(b, h.Window)
	b = binary.AppendUvarint(b, uint64(h.EvictEvery))
	b = appendBool(b, h.UniversalFilter)
	if h.Version >= 2 {
		b = binary.AppendUvarint(b, h.Caps)
	}
	cn.wbuf = b
	return cn.writeFrame(b)
}

// WriteHelloAck answers a v2 hello with the granted capability set
// (server side).
func (cn *Conn) WriteHelloAck(a HelloAck) error {
	b := append(cn.wbuf[:0], FrameHelloAck)
	b = binary.AppendUvarint(b, a.Version)
	b = binary.AppendUvarint(b, a.Caps)
	cn.wbuf = b
	return cn.writeFrame(b)
}

// WriteEdges sends one admitted batch.
func (cn *Conn) WriteEdges(m Edges) error {
	b := append(cn.wbuf[:0], FrameEdges)
	b = binary.AppendUvarint(b, m.Frame)
	b = appendBool(b, m.Suppress)
	b = binary.AppendUvarint(b, m.BaseSeq)
	b = cn.appendEdgesW(b, m.Edges)
	cn.wbuf = b
	return cn.writeFrame(b)
}

// WriteRegister sends one registration control frame.
func (cn *Conn) WriteRegister(m Register) error {
	b := append(cn.wbuf[:0], FrameRegister)
	b = binary.AppendUvarint(b, m.Frame)
	b = appendBool(b, m.Suppress)
	b = cn.appendStr(b, m.Name)
	b = binary.AppendUvarint(b, m.Seq)
	b = binary.AppendUvarint(b, uint64(m.Rank))
	// The query text is one-off free text; it stays plain even on a
	// dictionary connection.
	b = appendString(b, m.Query)
	b = binary.AppendUvarint(b, uint64(m.Strategy))
	b = appendBool(b, m.HasLeaves)
	b = binary.AppendUvarint(b, uint64(len(m.Leaves)))
	for _, leaf := range m.Leaves {
		b = binary.AppendUvarint(b, uint64(len(leaf)))
		for _, idx := range leaf {
			b = binary.AppendUvarint(b, uint64(idx))
		}
	}
	b = binary.AppendUvarint(b, uint64(m.MaxMatches))
	b = binary.AppendVarint(b, m.MaxWork)
	b = binary.AppendVarint(b, m.MaxSteps)
	b = binary.AppendUvarint(b, uint64(m.Workers))
	b = appendBool(b, m.FilterUniversal)
	b = cn.appendStringsW(b, m.FilterTypes)
	b = cn.appendEdgesW(b, m.Backfill)
	if len(m.State) > 0 {
		// Trailing migration-state field: old decoders stop at the
		// backfill and never see it, new decoders read it only when
		// bytes remain — the same one-way extension HelloAck.Caps uses.
		b = binary.AppendUvarint(b, uint64(len(m.State)))
		b = append(b, m.State...)
	}
	cn.wbuf = b
	return cn.writeFrame(b)
}

// WriteBackfill sends one backfill continuation chunk.
func (cn *Conn) WriteBackfill(m BackfillChunk) error {
	b := append(cn.wbuf[:0], FrameBackfill)
	b = binary.AppendUvarint(b, m.Frame)
	b = cn.appendStr(b, m.Name)
	b = cn.appendEdgesW(b, m.Edges)
	cn.wbuf = b
	return cn.writeFrame(b)
}

// WriteUnregister sends one removal control frame.
func (cn *Conn) WriteUnregister(m Unregister) error {
	b := append(cn.wbuf[:0], FrameUnregister)
	b = binary.AppendUvarint(b, m.Frame)
	b = appendBool(b, m.Suppress)
	b = cn.appendStr(b, m.Name)
	b = binary.AppendUvarint(b, m.Seq)
	b = appendBool(b, m.FilterUniversal)
	b = cn.appendStringsW(b, m.FilterTypes)
	if m.Migrate {
		// Trailing migration flag; absent (hence false) on frames from
		// routers that predate live migration.
		b = appendBool(b, true)
	}
	cn.wbuf = b
	return cn.writeFrame(b)
}

// WriteCloseStream sends the end-of-stream frame.
func (cn *Conn) WriteCloseStream(m CloseStream) error {
	b := append(cn.wbuf[:0], FrameClose)
	b = binary.AppendUvarint(b, m.Frame)
	b = binary.AppendUvarint(b, m.FinalSeq)
	cn.wbuf = b
	return cn.writeFrame(b)
}

// WriteMatch streams one completed match (server side). On a CapDict
// connection every name goes through the server→client dictionary and
// the match-edge timestamps are within-list deltas.
func (cn *Conn) WriteMatch(m Match) error {
	b := append(cn.wbuf[:0], FrameMatch)
	b = binary.AppendUvarint(b, m.Frame)
	b = cn.appendStr(b, m.Query)
	b = binary.AppendUvarint(b, uint64(m.Rank))
	b = binary.AppendUvarint(b, m.Seq)
	b = binary.AppendVarint(b, m.FirstTS)
	b = binary.AppendVarint(b, m.LastTS)
	b = binary.AppendUvarint(b, uint64(len(m.Bindings)))
	for _, bd := range m.Bindings {
		b = cn.appendStr(b, bd.QueryVertex)
		b = cn.appendStr(b, bd.DataVertex)
	}
	b = binary.AppendUvarint(b, uint64(len(m.Edges)))
	prev := int64(0)
	for _, e := range m.Edges {
		b = binary.AppendUvarint(b, uint64(e.QueryEdge))
		b = cn.appendStr(b, e.Src)
		b = cn.appendStr(b, e.Dst)
		b = cn.appendStr(b, e.Type)
		if cn.dict != nil {
			b = binary.AppendVarint(b, e.TS-prev)
			prev = e.TS
		} else {
			b = binary.AppendVarint(b, e.TS)
		}
	}
	cn.wbuf = b
	return cn.writeFrame(b)
}

// WriteDone acknowledges one client frame (server side).
func (cn *Conn) WriteDone(m Done) error {
	b := append(cn.wbuf[:0], FrameDone)
	b = binary.AppendUvarint(b, m.Frame)
	b = appendString(b, m.Err)
	b = binary.AppendVarint(b, m.Live)
	b = binary.AppendVarint(b, m.Stored)
	b = binary.AppendVarint(b, m.Types)
	cn.wbuf = b
	return cn.writeFrame(b)
}

// ---- message decoders (payload body, i.e. frame minus type byte) ----

// DecodeHello parses a FrameHello body. The capability field is
// trailing and optional: a v1 hello decodes with Caps = 0.
func DecodeHello(body []byte) (Hello, error) {
	d := dec{b: body}
	h := Hello{
		Version:    d.uvarint(),
		Slot:       int(d.uvarint()),
		Window:     d.varint(),
		EvictEvery: int(d.uvarint()),
	}
	h.UniversalFilter = d.bool_()
	if d.err == nil && len(d.b) > 0 {
		h.Caps = d.uvarint()
	}
	return h, d.err
}

// DecodeHelloAck parses a FrameHelloAck body.
func DecodeHelloAck(body []byte) (HelloAck, error) {
	d := dec{b: body}
	a := HelloAck{Version: d.uvarint(), Caps: d.uvarint()}
	return a, d.err
}

// DecodeEdges parses a FrameEdges body in the plain v1 encoding.
func DecodeEdges(body []byte) (Edges, error) { return decodeEdges(body, nil) }

// DecodeEdges parses a FrameEdges body under the connection's
// negotiated encoding, updating the connection's decode dictionary.
func (cn *Conn) DecodeEdges(body []byte) (Edges, error) { return decodeEdges(body, cn.tbl) }

func decodeEdges(body []byte, tbl *strTable) (Edges, error) {
	d := dec{b: body, tbl: tbl}
	m := Edges{Frame: d.uvarint(), Suppress: d.bool_(), BaseSeq: d.uvarint()}
	m.Edges = d.edges()
	return m, d.err
}

// DecodeRegister parses a FrameRegister body in the plain v1 encoding.
func DecodeRegister(body []byte) (Register, error) { return decodeRegister(body, nil) }

// DecodeRegister parses a FrameRegister body under the connection's
// negotiated encoding, updating the connection's decode dictionary.
func (cn *Conn) DecodeRegister(body []byte) (Register, error) { return decodeRegister(body, cn.tbl) }

func decodeRegister(body []byte, tbl *strTable) (Register, error) {
	d := dec{b: body, tbl: tbl}
	m := Register{
		Frame: d.uvarint(), Suppress: d.bool_(),
		Name: d.str(), Seq: d.uvarint(), Rank: int(d.uvarint()),
		Query: d.string_(), Strategy: int(d.uvarint()),
	}
	m.HasLeaves = d.bool_()
	nl := d.count("leaf", minLeafSize)
	if d.err == nil && nl > 0 {
		m.Leaves = make([][]int, nl)
		for i := range m.Leaves {
			ne := d.count("leaf edge", minLeafSize)
			if d.err != nil {
				break
			}
			m.Leaves[i] = make([]int, ne)
			for j := range m.Leaves[i] {
				m.Leaves[i][j] = int(d.uvarint())
			}
		}
	}
	m.MaxMatches = int(d.uvarint())
	m.MaxWork = d.varint()
	m.MaxSteps = d.varint()
	m.Workers = int(d.uvarint())
	m.FilterUniversal = d.bool_()
	m.FilterTypes = d.strings()
	m.Backfill = d.edges()
	if d.err == nil && len(d.b) > 0 {
		// Trailing migration-state field (see WriteRegister). Copied:
		// the body aliases the connection read buffer, and the engine
		// transplant may outlive the frame.
		n := d.uvarint()
		if d.err == nil && uint64(len(d.b)) < n {
			d.fail("register state")
		}
		if d.err == nil {
			m.State = append([]byte(nil), d.b[:n]...)
			d.b = d.b[n:]
		}
	}
	return m, d.err
}

// DecodeBackfill parses a FrameBackfill body in the plain v1 encoding.
func DecodeBackfill(body []byte) (BackfillChunk, error) { return decodeBackfill(body, nil) }

// DecodeBackfill parses a FrameBackfill body under the connection's
// negotiated encoding, updating the connection's decode dictionary.
func (cn *Conn) DecodeBackfill(body []byte) (BackfillChunk, error) {
	return decodeBackfill(body, cn.tbl)
}

func decodeBackfill(body []byte, tbl *strTable) (BackfillChunk, error) {
	d := dec{b: body, tbl: tbl}
	m := BackfillChunk{Frame: d.uvarint(), Name: d.str()}
	m.Edges = d.edges()
	return m, d.err
}

// DecodeUnregister parses a FrameUnregister body in the plain v1
// encoding.
func DecodeUnregister(body []byte) (Unregister, error) { return decodeUnregister(body, nil) }

// DecodeUnregister parses a FrameUnregister body under the
// connection's negotiated encoding, updating the connection's decode
// dictionary.
func (cn *Conn) DecodeUnregister(body []byte) (Unregister, error) {
	return decodeUnregister(body, cn.tbl)
}

func decodeUnregister(body []byte, tbl *strTable) (Unregister, error) {
	d := dec{b: body, tbl: tbl}
	m := Unregister{
		Frame: d.uvarint(), Suppress: d.bool_(),
		Name: d.str(), Seq: d.uvarint(),
	}
	m.FilterUniversal = d.bool_()
	m.FilterTypes = d.strings()
	if d.err == nil && len(d.b) > 0 {
		m.Migrate = d.bool_() // trailing migration flag (see WriteUnregister)
	}
	return m, d.err
}

// DecodeCloseStream parses a FrameClose body.
func DecodeCloseStream(body []byte) (CloseStream, error) {
	d := dec{b: body}
	m := CloseStream{Frame: d.uvarint(), FinalSeq: d.uvarint()}
	return m, d.err
}

// DecodeMatch parses a FrameMatch body in the plain v1 encoding.
func DecodeMatch(body []byte) (Match, error) { return decodeMatch(body, nil) }

// DecodeMatch parses a FrameMatch body under the connection's
// negotiated encoding, updating the connection's decode dictionary.
func (cn *Conn) DecodeMatch(body []byte) (Match, error) { return decodeMatch(body, cn.tbl) }

func decodeMatch(body []byte, tbl *strTable) (Match, error) {
	d := dec{b: body, tbl: tbl}
	m := Match{
		Frame: d.uvarint(), Query: d.str(), Rank: int(d.uvarint()),
		Seq: d.uvarint(), FirstTS: d.varint(), LastTS: d.varint(),
	}
	nb := d.count("binding", minBindingSize)
	if d.err == nil && nb > 0 {
		m.Bindings = make([]Binding, nb)
		for i := range m.Bindings {
			m.Bindings[i] = Binding{QueryVertex: d.str(), DataVertex: d.str()}
		}
	}
	ne := d.count("match edge", minMatchEdgeSize)
	if d.err == nil && ne > 0 {
		m.Edges = make([]MatchEdge, ne)
		prev := int64(0)
		for i := range m.Edges {
			m.Edges[i] = MatchEdge{
				QueryEdge: int(d.uvarint()),
				Src:       d.str(), Dst: d.str(), Type: d.str(),
				TS: d.varint(),
			}
			if tbl != nil {
				m.Edges[i].TS += prev
				prev = m.Edges[i].TS
			}
		}
	}
	return m, d.err
}

// DecodeDone parses a FrameDone body.
func DecodeDone(body []byte) (Done, error) {
	d := dec{b: body}
	m := Done{Frame: d.uvarint(), Err: d.string_(), Live: d.varint(), Stored: d.varint(), Types: d.varint()}
	return m, d.err
}
