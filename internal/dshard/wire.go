package dshard

// Frame and payload codecs. A frame is a 4-byte big-endian payload
// length followed by the payload; payload[0] is the frame type byte.
// Integers are varints (unsigned for seqs/counts, zigzag for
// timestamps), strings are uvarint-length-prefixed bytes. Encoding is
// append-style into a reused scratch buffer, so the steady-state hot
// path (edge batches, match streams) performs no per-frame
// allocations beyond the strings themselves on decode.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync/atomic"

	"streamgraph/internal/stream"
)

// Conn wraps one protocol connection: buffered frame IO over a
// net.Conn (or any ReadWriteCloser). It is not safe for concurrent
// writers or concurrent readers; the protocol's single-writer /
// single-reader split (one goroutine sending, one receiving) is the
// intended use.
type Conn struct {
	rwc io.ReadWriteCloser
	br  *bufio.Reader
	bw  *bufio.Writer

	// Write-side and read-side scratch are separate: the intended use
	// runs one sending and one receiving goroutine per connection, and
	// they must never share a buffer.
	wbuf []byte
	whdr [4]byte
	rbuf []byte
	rhdr [4]byte

	// Wire accounting, maintained by the frame layer itself so every
	// protocol user gets it for free. Atomics: written by the
	// single-writer/single-reader pair, read by metrics scrapes on
	// arbitrary goroutines.
	bytesIn, bytesOut   atomic.Int64
	framesIn, framesOut atomic.Int64
}

// ConnStats is a point-in-time snapshot of one connection's wire
// accounting. Byte counts include the 4-byte frame headers.
type ConnStats struct {
	// BytesIn and FramesIn count received frames; BytesOut and
	// FramesOut count sent frames.
	BytesIn, BytesOut   int64
	FramesIn, FramesOut int64
}

// Stats snapshots the connection's cumulative wire counters. Safe to
// call from any goroutine at any time.
func (cn *Conn) Stats() ConnStats {
	return ConnStats{
		BytesIn:   cn.bytesIn.Load(),
		BytesOut:  cn.bytesOut.Load(),
		FramesIn:  cn.framesIn.Load(),
		FramesOut: cn.framesOut.Load(),
	}
}

// NewConn wraps an established connection.
func NewConn(rwc io.ReadWriteCloser) *Conn {
	return &Conn{
		rwc: rwc,
		br:  bufio.NewReaderSize(rwc, 64<<10),
		bw:  bufio.NewWriterSize(rwc, 64<<10),
	}
}

// Dial connects to a remote shard worker.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// Close closes the underlying connection.
func (cn *Conn) Close() error { return cn.rwc.Close() }

// writeFrame sends one framed payload and flushes.
func (cn *Conn) writeFrame(payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("dshard: frame of %d bytes exceeds MaxFrame", len(payload))
	}
	binary.BigEndian.PutUint32(cn.whdr[:], uint32(len(payload)))
	if _, err := cn.bw.Write(cn.whdr[:]); err != nil {
		return err
	}
	if _, err := cn.bw.Write(payload); err != nil {
		return err
	}
	if err := cn.bw.Flush(); err != nil {
		return err
	}
	cn.bytesOut.Add(int64(len(payload)) + 4)
	cn.framesOut.Add(1)
	return nil
}

// ReadFrame reads one frame and returns its type byte and payload
// body (the payload minus the type byte). The body aliases an
// internal buffer valid until the next ReadFrame.
func (cn *Conn) ReadFrame() (byte, []byte, error) {
	if _, err := io.ReadFull(cn.br, cn.rhdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(cn.rhdr[:])
	if n == 0 || n > MaxFrame {
		return 0, nil, fmt.Errorf("dshard: bad frame length %d", n)
	}
	if cap(cn.rbuf) < int(n) {
		cn.rbuf = make([]byte, n)
	}
	b := cn.rbuf[:n]
	if _, err := io.ReadFull(cn.br, b); err != nil {
		return 0, nil, err
	}
	cn.bytesIn.Add(int64(n) + 4)
	cn.framesIn.Add(1)
	return b[0], b[1:], nil
}

// ---- primitive append/decode helpers ----

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendEdge(b []byte, e stream.Edge) []byte {
	b = appendString(b, e.Src)
	b = appendString(b, e.SrcLabel)
	b = appendString(b, e.Dst)
	b = appendString(b, e.DstLabel)
	b = appendString(b, e.Type)
	return binary.AppendVarint(b, e.TS)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// dec is a cursor over one payload; the first decode error sticks and
// every subsequent read returns zero values.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("dshard: truncated or corrupt %s", what)
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) bool_() bool { return d.uvarint() != 0 }

func (d *dec) string_() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n {
		d.fail("string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// count decodes a list length and rejects any count that could not
// possibly fit in the remaining payload given the element type's
// minimum encoded size — so a hostile count prefix can never drive an
// allocation larger than (frame size / minSize) elements. The bound is
// computed by division so a huge count cannot overflow it.
func (d *dec) count(what string, minSize uint64) int {
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.b))/minSize {
		d.fail(what + " count")
	}
	return int(n)
}

// Minimum encoded element sizes for count bounds: an edge is five
// length-prefixed strings plus a timestamp varint; a binding is two
// strings; a match edge is an index, three strings and a timestamp; a
// string and a leaf are at least their own length prefix.
const (
	minEdgeSize      = 6
	minStringSize    = 1
	minLeafSize      = 1
	minBindingSize   = 2
	minMatchEdgeSize = 5
)

func (d *dec) edge() stream.Edge {
	return stream.Edge{
		Src: d.string_(), SrcLabel: d.string_(),
		Dst: d.string_(), DstLabel: d.string_(),
		Type: d.string_(), TS: d.varint(),
	}
}

func (d *dec) strings() []string {
	n := d.count("string list", minStringSize)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.string_()
	}
	return out
}

func (d *dec) edges() []stream.Edge {
	n := d.count("edge list", minEdgeSize)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]stream.Edge, n)
	for i := range out {
		out[i] = d.edge()
	}
	return out
}

func appendStrings(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func appendEdges(b []byte, es []stream.Edge) []byte {
	b = binary.AppendUvarint(b, uint64(len(es)))
	for _, e := range es {
		b = appendEdge(b, e)
	}
	return b
}

// ---- message writers ----

// WriteHello sends the connection-opening frame.
func (cn *Conn) WriteHello(h Hello) error {
	b := append(cn.wbuf[:0], FrameHello)
	b = binary.AppendUvarint(b, h.Version)
	b = binary.AppendUvarint(b, uint64(h.Slot))
	b = binary.AppendVarint(b, h.Window)
	b = binary.AppendUvarint(b, uint64(h.EvictEvery))
	b = appendBool(b, h.UniversalFilter)
	cn.wbuf = b
	return cn.writeFrame(b)
}

// WriteEdges sends one admitted batch.
func (cn *Conn) WriteEdges(m Edges) error {
	b := append(cn.wbuf[:0], FrameEdges)
	b = binary.AppendUvarint(b, m.Frame)
	b = appendBool(b, m.Suppress)
	b = binary.AppendUvarint(b, m.BaseSeq)
	b = appendEdges(b, m.Edges)
	cn.wbuf = b
	return cn.writeFrame(b)
}

// WriteRegister sends one registration control frame.
func (cn *Conn) WriteRegister(m Register) error {
	b := append(cn.wbuf[:0], FrameRegister)
	b = binary.AppendUvarint(b, m.Frame)
	b = appendBool(b, m.Suppress)
	b = appendString(b, m.Name)
	b = binary.AppendUvarint(b, m.Seq)
	b = binary.AppendUvarint(b, uint64(m.Rank))
	b = appendString(b, m.Query)
	b = binary.AppendUvarint(b, uint64(m.Strategy))
	b = appendBool(b, m.HasLeaves)
	b = binary.AppendUvarint(b, uint64(len(m.Leaves)))
	for _, leaf := range m.Leaves {
		b = binary.AppendUvarint(b, uint64(len(leaf)))
		for _, idx := range leaf {
			b = binary.AppendUvarint(b, uint64(idx))
		}
	}
	b = binary.AppendUvarint(b, uint64(m.MaxMatches))
	b = binary.AppendVarint(b, m.MaxWork)
	b = binary.AppendVarint(b, m.MaxSteps)
	b = binary.AppendUvarint(b, uint64(m.Workers))
	b = appendBool(b, m.FilterUniversal)
	b = appendStrings(b, m.FilterTypes)
	b = appendEdges(b, m.Backfill)
	cn.wbuf = b
	return cn.writeFrame(b)
}

// WriteBackfill sends one backfill continuation chunk.
func (cn *Conn) WriteBackfill(m BackfillChunk) error {
	b := append(cn.wbuf[:0], FrameBackfill)
	b = binary.AppendUvarint(b, m.Frame)
	b = appendString(b, m.Name)
	b = appendEdges(b, m.Edges)
	cn.wbuf = b
	return cn.writeFrame(b)
}

// WriteUnregister sends one removal control frame.
func (cn *Conn) WriteUnregister(m Unregister) error {
	b := append(cn.wbuf[:0], FrameUnregister)
	b = binary.AppendUvarint(b, m.Frame)
	b = appendBool(b, m.Suppress)
	b = appendString(b, m.Name)
	b = binary.AppendUvarint(b, m.Seq)
	b = appendBool(b, m.FilterUniversal)
	b = appendStrings(b, m.FilterTypes)
	cn.wbuf = b
	return cn.writeFrame(b)
}

// WriteCloseStream sends the end-of-stream frame.
func (cn *Conn) WriteCloseStream(m CloseStream) error {
	b := append(cn.wbuf[:0], FrameClose)
	b = binary.AppendUvarint(b, m.Frame)
	b = binary.AppendUvarint(b, m.FinalSeq)
	cn.wbuf = b
	return cn.writeFrame(b)
}

// WriteMatch streams one completed match (server side).
func (cn *Conn) WriteMatch(m Match) error {
	b := append(cn.wbuf[:0], FrameMatch)
	b = binary.AppendUvarint(b, m.Frame)
	b = appendString(b, m.Query)
	b = binary.AppendUvarint(b, uint64(m.Rank))
	b = binary.AppendUvarint(b, m.Seq)
	b = binary.AppendVarint(b, m.FirstTS)
	b = binary.AppendVarint(b, m.LastTS)
	b = binary.AppendUvarint(b, uint64(len(m.Bindings)))
	for _, bd := range m.Bindings {
		b = appendString(b, bd.QueryVertex)
		b = appendString(b, bd.DataVertex)
	}
	b = binary.AppendUvarint(b, uint64(len(m.Edges)))
	for _, e := range m.Edges {
		b = binary.AppendUvarint(b, uint64(e.QueryEdge))
		b = appendString(b, e.Src)
		b = appendString(b, e.Dst)
		b = appendString(b, e.Type)
		b = binary.AppendVarint(b, e.TS)
	}
	cn.wbuf = b
	return cn.writeFrame(b)
}

// WriteDone acknowledges one client frame (server side).
func (cn *Conn) WriteDone(m Done) error {
	b := append(cn.wbuf[:0], FrameDone)
	b = binary.AppendUvarint(b, m.Frame)
	b = appendString(b, m.Err)
	b = binary.AppendVarint(b, m.Live)
	b = binary.AppendVarint(b, m.Stored)
	b = binary.AppendVarint(b, m.Types)
	cn.wbuf = b
	return cn.writeFrame(b)
}

// ---- message decoders (payload body, i.e. frame minus type byte) ----

// DecodeHello parses a FrameHello body.
func DecodeHello(body []byte) (Hello, error) {
	d := dec{b: body}
	h := Hello{
		Version:    d.uvarint(),
		Slot:       int(d.uvarint()),
		Window:     d.varint(),
		EvictEvery: int(d.uvarint()),
	}
	h.UniversalFilter = d.bool_()
	return h, d.err
}

// DecodeEdges parses a FrameEdges body.
func DecodeEdges(body []byte) (Edges, error) {
	d := dec{b: body}
	m := Edges{Frame: d.uvarint(), Suppress: d.bool_(), BaseSeq: d.uvarint()}
	m.Edges = d.edges()
	return m, d.err
}

// DecodeRegister parses a FrameRegister body.
func DecodeRegister(body []byte) (Register, error) {
	d := dec{b: body}
	m := Register{
		Frame: d.uvarint(), Suppress: d.bool_(),
		Name: d.string_(), Seq: d.uvarint(), Rank: int(d.uvarint()),
		Query: d.string_(), Strategy: int(d.uvarint()),
	}
	m.HasLeaves = d.bool_()
	nl := d.count("leaf", minLeafSize)
	if d.err == nil && nl > 0 {
		m.Leaves = make([][]int, nl)
		for i := range m.Leaves {
			ne := d.count("leaf edge", minLeafSize)
			if d.err != nil {
				break
			}
			m.Leaves[i] = make([]int, ne)
			for j := range m.Leaves[i] {
				m.Leaves[i][j] = int(d.uvarint())
			}
		}
	}
	m.MaxMatches = int(d.uvarint())
	m.MaxWork = d.varint()
	m.MaxSteps = d.varint()
	m.Workers = int(d.uvarint())
	m.FilterUniversal = d.bool_()
	m.FilterTypes = d.strings()
	m.Backfill = d.edges()
	return m, d.err
}

// DecodeBackfill parses a FrameBackfill body.
func DecodeBackfill(body []byte) (BackfillChunk, error) {
	d := dec{b: body}
	m := BackfillChunk{Frame: d.uvarint(), Name: d.string_()}
	m.Edges = d.edges()
	return m, d.err
}

// DecodeUnregister parses a FrameUnregister body.
func DecodeUnregister(body []byte) (Unregister, error) {
	d := dec{b: body}
	m := Unregister{
		Frame: d.uvarint(), Suppress: d.bool_(),
		Name: d.string_(), Seq: d.uvarint(),
	}
	m.FilterUniversal = d.bool_()
	m.FilterTypes = d.strings()
	return m, d.err
}

// DecodeCloseStream parses a FrameClose body.
func DecodeCloseStream(body []byte) (CloseStream, error) {
	d := dec{b: body}
	m := CloseStream{Frame: d.uvarint(), FinalSeq: d.uvarint()}
	return m, d.err
}

// DecodeMatch parses a FrameMatch body.
func DecodeMatch(body []byte) (Match, error) {
	d := dec{b: body}
	m := Match{
		Frame: d.uvarint(), Query: d.string_(), Rank: int(d.uvarint()),
		Seq: d.uvarint(), FirstTS: d.varint(), LastTS: d.varint(),
	}
	nb := d.count("binding", minBindingSize)
	if d.err == nil && nb > 0 {
		m.Bindings = make([]Binding, nb)
		for i := range m.Bindings {
			m.Bindings[i] = Binding{QueryVertex: d.string_(), DataVertex: d.string_()}
		}
	}
	ne := d.count("match edge", minMatchEdgeSize)
	if d.err == nil && ne > 0 {
		m.Edges = make([]MatchEdge, ne)
		for i := range m.Edges {
			m.Edges[i] = MatchEdge{
				QueryEdge: int(d.uvarint()),
				Src:       d.string_(), Dst: d.string_(), Type: d.string_(),
				TS: d.varint(),
			}
		}
	}
	return m, d.err
}

// DecodeDone parses a FrameDone body.
func DecodeDone(body []byte) (Done, error) {
	d := dec{b: body}
	m := Done{Frame: d.uvarint(), Err: d.string_(), Live: d.varint(), Stored: d.varint(), Types: d.varint()}
	return m, d.err
}
