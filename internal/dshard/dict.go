package dshard

// The v2 string dictionary. Vertex names, labels and edge types repeat
// endlessly on a connection — every edge frame re-ships five of them —
// so a v2 connection interns each distinct string once per direction:
// its first occurrence travels as a definition (explicit id + bytes),
// every later occurrence as a 1–3 byte reference. The dictionary is
// strictly per connection and per direction, mirroring the in-process
// graph.Interner: a reconnect starts empty and the replay re-interns,
// so exactly-once recovery needs no cross-connection dictionary state.
//
// Reference encoding (one uvarint tag):
//
//	tag == 0  inline: uvarint length + bytes, NOT interned (the
//	          encoder's overflow escape once the dictionary is full)
//	tag == 1  definition: uvarint id + uvarint length + bytes; id must
//	          equal the table length (ids are dense and in order — a
//	          duplicate or gapped id is a protocol error) and stay
//	          under maxDictEntries
//	tag >= 2  reference to id tag-2, which must already be defined
//
// The explicit id makes decoder validation exact: unknown ids,
// duplicate definitions and id gaps are all hard errors, never silent
// misdecodes.

import (
	"encoding/binary"
	"sync/atomic"
)

// maxDictEntries caps a per-direction dictionary. An honest encoder
// falls back to inline (non-interned) strings at the cap, so streams
// with more distinct strings than this still flow — at v1 cost for the
// overflow — while a hostile peer cannot grow a table without bound.
const maxDictEntries = 1 << 21

// strDict is the encode side: string → dense id, first-seen order.
// Mutated only by the connection's single writer goroutine; the
// entry/byte counters are atomics because metrics scrapes read them
// from arbitrary goroutines.
type strDict struct {
	ids     map[string]uint32
	entries atomic.Int64
	bytes   atomic.Int64
}

func newStrDict() *strDict {
	return &strDict{ids: make(map[string]uint32)}
}

// strTable is the decode side: dense id → string. Mutated only by the
// connection's single reader goroutine; counters as in strDict.
type strTable struct {
	vals    []string
	entries atomic.Int64
	bytes   atomic.Int64
}

// appendStr encodes one string under the connection's negotiated
// encoding: plain length-prefixed on a v1 connection, a dictionary
// reference/definition on a v2 dictionary connection.
func (cn *Conn) appendStr(b []byte, s string) []byte {
	sd := cn.dict
	if sd == nil {
		return appendString(b, s)
	}
	if id, ok := sd.ids[s]; ok {
		return binary.AppendUvarint(b, uint64(id)+2)
	}
	if len(sd.ids) >= maxDictEntries {
		b = append(b, 0)
		return appendString(b, s)
	}
	id := uint32(len(sd.ids))
	sd.ids[s] = id
	sd.entries.Add(1)
	sd.bytes.Add(int64(len(s)))
	b = append(b, 1)
	b = binary.AppendUvarint(b, uint64(id))
	return appendString(b, s)
}

// str decodes one string under the cursor's table: plain when tbl is
// nil (v1 frames, snapshot images, the edlog codec), dictionary form
// otherwise.
func (d *dec) str() string {
	if d.tbl == nil {
		return d.string_()
	}
	tag := d.uvarint()
	if d.err != nil {
		return ""
	}
	switch tag {
	case 0:
		return d.string_()
	case 1:
		id := d.uvarint()
		s := d.string_()
		if d.err != nil {
			return ""
		}
		if id != uint64(len(d.tbl.vals)) || id >= maxDictEntries {
			// Duplicate definition (id already assigned), id gap (id
			// past the next dense slot), or table overflow.
			d.fail("string dictionary definition id")
			return ""
		}
		d.tbl.vals = append(d.tbl.vals, s)
		d.tbl.entries.Add(1)
		d.tbl.bytes.Add(int64(len(s)))
		return s
	default:
		id := tag - 2
		if id >= uint64(len(d.tbl.vals)) {
			d.fail("string dictionary reference")
			return ""
		}
		return d.tbl.vals[id]
	}
}
