package dshard

import "streamgraph/internal/stream"

// Exported edge-list codec. The durable EdgeLog (internal/edlog)
// stores record payloads in exactly the wire edge encoding — a uvarint
// count followed by edges, each five length-prefixed strings and a
// zigzag-varint timestamp — so a log segment can be framed onto a
// connection, or a received batch appended to the log, without a
// re-encode. These wrappers expose the internal codec for that reuse.

// AppendEdgeList appends the wire encoding of es to b and returns the
// extended slice.
func AppendEdgeList(b []byte, es []stream.Edge) []byte {
	return appendEdges(b, es)
}

// DecodeEdgeList decodes one wire-encoded edge list from the front of
// b, returning the edges and the unconsumed remainder.
func DecodeEdgeList(b []byte) ([]stream.Edge, []byte, error) {
	d := dec{b: b}
	es := d.edges()
	if d.err != nil {
		return nil, nil, d.err
	}
	return es, d.b, nil
}
