package dshard

import (
	"io"
	"math"
	"reflect"
	"testing"

	"streamgraph/internal/stream"
)

// pipeEnd adapts one end of an in-memory pipe to the Conn interface.
type pipeEnd struct {
	io.Reader
	io.Writer
}

func (pipeEnd) Close() error { return nil }

// connPair returns two Conns wired to each other.
func connPair() (*Conn, *Conn) {
	ar, bw := io.Pipe()
	br, aw := io.Pipe()
	return NewConn(pipeEnd{Reader: ar, Writer: aw}), NewConn(pipeEnd{Reader: br, Writer: bw})
}

func testEdges() []stream.Edge {
	return []stream.Edge{
		{Src: "a", SrcLabel: "ip", Dst: "b", DstLabel: "host", Type: "TCP", TS: 42},
		{Src: "b", SrcLabel: "", Dst: "c", DstLabel: "ip", Type: "GRE", TS: -7},
		{Src: "漢字", SrcLabel: "λ", Dst: "", DstLabel: "x", Type: "UDP", TS: math.MaxInt64},
	}
}

// TestWireRoundTrip pushes every message type through a pipe and
// requires the decoded form to equal the original exactly.
func TestWireRoundTrip(t *testing.T) {
	client, server := connPair()

	msgs := []any{
		Hello{Version: ProtocolVersion, Slot: 3, Window: 1 << 40, EvictEvery: 256, UniversalFilter: true},
		Edges{Frame: 1, Suppress: true, BaseSeq: 1 << 33, Edges: testEdges()},
		Edges{Frame: 2, BaseSeq: 0, Edges: testEdges()[:1]},
		Register{
			Frame: 3, Suppress: true, Name: "q1", Seq: 99, Rank: 7,
			Query: "e a b TCP\ne b c GRE", Strategy: 1,
			HasLeaves: true, Leaves: [][]int{{0}, {1}},
			MaxMatches: 20000, MaxWork: -1, MaxSteps: 1 << 50, Workers: 4,
			FilterUniversal: false, FilterTypes: []string{"GRE", "TCP"},
			Backfill: testEdges(),
		},
		Register{Frame: 4, Name: "q2", Query: "e a b *", Strategy: 4, FilterUniversal: true},
		BackfillChunk{Frame: 12, Name: "q1", Edges: testEdges()},
		BackfillChunk{Frame: 13, Name: "q2"},
		Unregister{Frame: 5, Name: "q1", Seq: 120, FilterUniversal: false, FilterTypes: []string{"TCP"}},
		Unregister{Frame: 6, Suppress: true, Name: "q2", Seq: 121, FilterUniversal: true},
		CloseStream{Frame: 7, FinalSeq: 1 << 62},
		Match{
			Frame: 8, Query: "q1", Rank: 2, Seq: 55, FirstTS: -3, LastTS: 90,
			Bindings: []Binding{{QueryVertex: "a", DataVertex: "n1"}, {QueryVertex: "b", DataVertex: "n2"}},
			Edges:    []MatchEdge{{QueryEdge: 1, Src: "n1", Dst: "n2", Type: "TCP", TS: 88}},
		},
		Match{Frame: 9, Query: "q2", Seq: 0},
		Done{Frame: 10, Err: "core: query \"q1\" already registered", Live: 5, Stored: 9, Types: -1},
		Done{Frame: 11},
	}

	go func() {
		for _, m := range msgs {
			var err error
			switch m := m.(type) {
			case Hello:
				err = client.WriteHello(m)
			case Edges:
				err = client.WriteEdges(m)
			case Register:
				err = client.WriteRegister(m)
			case BackfillChunk:
				err = client.WriteBackfill(m)
			case Unregister:
				err = client.WriteUnregister(m)
			case CloseStream:
				err = client.WriteCloseStream(m)
			case Match:
				err = client.WriteMatch(m)
			case Done:
				err = client.WriteDone(m)
			}
			if err != nil {
				t.Errorf("write %T: %v", m, err)
				return
			}
		}
	}()

	for i, want := range msgs {
		typ, body, err := server.ReadFrame()
		if err != nil {
			t.Fatalf("msg %d: read: %v", i, err)
		}
		var got any
		switch typ {
		case FrameHello:
			got, err = DecodeHello(body)
		case FrameEdges:
			got, err = DecodeEdges(body)
		case FrameRegister:
			got, err = DecodeRegister(body)
		case FrameBackfill:
			got, err = DecodeBackfill(body)
		case FrameUnregister:
			got, err = DecodeUnregister(body)
		case FrameClose:
			got, err = DecodeCloseStream(body)
		case FrameMatch:
			got, err = DecodeMatch(body)
		case FrameDone:
			got, err = DecodeDone(body)
		default:
			t.Fatalf("msg %d: unknown frame type 0x%02x", i, typ)
		}
		if err != nil {
			t.Fatalf("msg %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("msg %d round-trip mismatch:\n got %#v\nwant %#v", i, got, want)
		}
	}
}

// TestDecodeCorrupt requires every decoder to reject truncated bodies
// with an error instead of panicking or fabricating values.
func TestDecodeCorrupt(t *testing.T) {
	client, server := connPair()
	go client.WriteRegister(Register{
		Frame: 1, Name: "q", Query: "e a b TCP", Strategy: 1,
		HasLeaves: true, Leaves: [][]int{{0}},
		FilterTypes: []string{"TCP"}, Backfill: testEdges(),
	})
	_, body, err := server.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(body); cut++ {
		if _, err := DecodeRegister(body[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(body))
		}
	}
	// A hostile count prefix must not drive a huge allocation — even
	// one that fits the remaining byte count but not the element type's
	// minimum encoded size (an edge cannot encode in under 6 bytes, so
	// a 1000-edge claim needs ≥ 6000 trailing bytes, not 1000).
	if _, err := DecodeEdges([]byte{1, 0, 1, 0xff, 0xff, 0xff, 0xff, 0x0f}); err == nil {
		t.Fatal("absurd edge count decoded without error")
	}
	plausible := append([]byte{1, 0, 1, 0xe8, 0x07}, make([]byte, 1000)...)
	if _, err := DecodeEdges(plausible); err == nil {
		t.Fatal("edge count exceeding remaining/minEdgeSize decoded without error")
	}
	// A count of 2^63 must not wrap the bounds arithmetic into a
	// negative make() length (frame: id=1, suppress=0, base=1, then the
	// 10-byte uvarint for 1<<63).
	overflow := append([]byte{1, 0, 1}, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01)
	overflow = append(overflow, make([]byte, 64)...)
	if _, err := DecodeEdges(overflow); err == nil {
		t.Fatal("2^63 edge count decoded without error")
	}
}
