package query

import (
	"strings"
	"testing"
)

func TestNewPath(t *testing.T) {
	q := NewPath("ip", "a", "b", "c")
	if len(q.Vertices) != 4 || len(q.Edges) != 3 {
		t.Fatalf("path sizes: %d vertices %d edges", len(q.Vertices), len(q.Edges))
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if !q.IsPath() || !q.IsTree() || !q.Connected() {
		t.Errorf("classification wrong: path=%v tree=%v conn=%v", q.IsPath(), q.IsTree(), q.Connected())
	}
	for i, e := range q.Edges {
		if e.Src != i || e.Dst != i+1 {
			t.Errorf("edge %d endpoints %d->%d", i, e.Src, e.Dst)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"no edges", &Graph{Vertices: []Vertex{{Name: "a"}}}},
		{"out of range", &Graph{
			Vertices: []Vertex{{Name: "a"}},
			Edges:    []Edge{{Src: 0, Dst: 5, Type: "t"}},
		}},
		{"self loop", &Graph{
			Vertices: []Vertex{{Name: "a"}},
			Edges:    []Edge{{Src: 0, Dst: 0, Type: "t"}},
		}},
		{"empty type", &Graph{
			Vertices: []Vertex{{Name: "a"}, {Name: "b"}},
			Edges:    []Edge{{Src: 0, Dst: 1, Type: ""}},
		}},
	}
	for _, tc := range cases {
		if err := tc.g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid graph", tc.name)
		}
	}
}

func TestClone(t *testing.T) {
	q := NewPath("*", "a", "b")
	c := q.Clone()
	c.Edges[0].Type = "changed"
	c.Vertices[0].Label = "changed"
	if q.Edges[0].Type == "changed" || q.Vertices[0].Label == "changed" {
		t.Fatalf("Clone shares storage")
	}
}

func TestLabelOf(t *testing.T) {
	q := &Graph{Vertices: []Vertex{{Name: "a", Label: ""}, {Name: "b", Label: "ip"}}}
	if q.LabelOf(0) != Wildcard {
		t.Errorf("empty label should normalize to wildcard")
	}
	if q.LabelOf(1) != "ip" {
		t.Errorf("explicit label lost")
	}
}

func TestStructuralHelpers(t *testing.T) {
	// Star: center 0 with 3 leaves — a tree but not a path.
	star := &Graph{
		Vertices: []Vertex{{Name: "c"}, {Name: "x"}, {Name: "y"}, {Name: "z"}},
		Edges: []Edge{
			{Src: 0, Dst: 1, Type: "t"},
			{Src: 0, Dst: 2, Type: "t"},
			{Src: 0, Dst: 3, Type: "t"},
		},
	}
	if star.IsPath() {
		t.Errorf("star classified as path")
	}
	if !star.IsTree() {
		t.Errorf("star not classified as tree")
	}
	if star.Degree(0) != 3 || star.Degree(1) != 1 {
		t.Errorf("degrees wrong")
	}
	if got := star.IncidentEdges(0); len(got) != 3 {
		t.Errorf("IncidentEdges(0) = %v", got)
	}
	if got := star.EdgeVertices([]int{0, 1}); len(got) != 3 || got[0] != 0 {
		t.Errorf("EdgeVertices = %v", got)
	}

	// Triangle: connected, not a tree.
	tri := &Graph{
		Vertices: []Vertex{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		Edges: []Edge{
			{Src: 0, Dst: 1, Type: "t"},
			{Src: 1, Dst: 2, Type: "t"},
			{Src: 2, Dst: 0, Type: "t"},
		},
	}
	if tri.IsTree() || tri.IsPath() {
		t.Errorf("triangle misclassified")
	}
	if !tri.Connected() {
		t.Errorf("triangle not connected")
	}

	// Two disjoint edges: disconnected.
	dis := &Graph{
		Vertices: []Vertex{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}},
		Edges: []Edge{
			{Src: 0, Dst: 1, Type: "t"},
			{Src: 2, Dst: 3, Type: "t"},
		},
	}
	if dis.Connected() {
		t.Errorf("disjoint edges reported connected")
	}
}

func TestParseRoundTrip(t *testing.T) {
	text := `
# the Figure 3 social query
v a person
v b person
v s artist
e a b friend
e b s likes
e c s follows
`
	q, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Vertices) != 4 || len(q.Edges) != 3 {
		t.Fatalf("parsed %d vertices %d edges", len(q.Vertices), len(q.Edges))
	}
	// c was implicitly created with a wildcard label.
	found := false
	for _, v := range q.Vertices {
		if v.Name == "c" {
			found = true
			if v.Label != Wildcard {
				t.Errorf("implicit vertex label = %q", v.Label)
			}
		}
	}
	if !found {
		t.Fatalf("implicit vertex missing")
	}
	// Round-trip through String.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(q2.Vertices) != len(q.Vertices) || len(q2.Edges) != len(q.Edges) {
		t.Fatalf("round trip changed shape")
	}
	for i := range q.Edges {
		if q.Edges[i].Type != q2.Edges[i].Type {
			t.Errorf("edge %d type changed", i)
		}
	}
}

func TestParseLabelUpgrade(t *testing.T) {
	// A vertex first seen in an edge (wildcard) can be labeled later.
	q, err := Parse("e a b t\nv a person\n")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range q.Vertices {
		if v.Name == "a" && v.Label != "person" {
			t.Errorf("label upgrade failed: %q", v.Label)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",            // no edges
		"v a",         // no edges either
		"x something", // unknown record
		"e a b",       // missing type
		"v",           // missing name
		"v a b c",     // too many fields
		"e a a t",     // self loop
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse accepted %q", text)
		}
	}
}

func TestAddVertexAddEdge(t *testing.T) {
	q := &Graph{}
	a := q.AddVertex("a", "ip")
	b := q.AddVertex("b", "ip")
	e := q.AddEdge(a, b, "tcp")
	if a != 0 || b != 1 || e != 0 {
		t.Errorf("indices: %d %d %d", a, b, e)
	}
	if !strings.Contains(q.String(), "e a b tcp") {
		t.Errorf("String() = %q", q.String())
	}
}
