package query

import (
	"testing"
)

// FuzzParseQuery feeds arbitrary text to the query parser. Parse must
// never panic, and any text it accepts must round-trip: rendering the
// parsed graph with String and reparsing it must succeed and reach a
// fixed point (String ∘ Parse is idempotent on Parse's image).
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"",
		"# just a comment\n",
		"e a b friend\n",
		"v a person\nv b person\ne a b knows\n",
		"v x\ne x y likes\ne y z follows\n",
		"v a *\nv b *\ne a b t1\ne b a t2\n",
		"e a a self\n",
		"v lonely person\n",
		"bogus record\n",
		"e a b\n",
		"v\n",
		"e a b t extra\n",
		"\tv a person\n  e a b t  \n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		q, err := Parse(text)
		if err != nil {
			return // rejected input: only requirement is no panic
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid graph: %v\ninput: %q", err, text)
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("round-trip reparse failed: %v\nrendered: %q\ninput: %q", err, rendered, text)
		}
		if again := q2.String(); again != rendered {
			t.Fatalf("round-trip not a fixed point:\nfirst:  %q\nsecond: %q\ninput:  %q", rendered, again, text)
		}
		if len(q2.Edges) != len(q.Edges) || len(q2.Vertices) != len(q.Vertices) {
			t.Fatalf("round-trip changed shape: %d/%d vertices, %d/%d edges\ninput: %q",
				len(q.Vertices), len(q2.Vertices), len(q.Edges), len(q2.Edges), text)
		}
	})
}
