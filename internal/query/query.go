// Package query represents pattern (query) graphs: small directed graphs
// with typed edges and optionally label-constrained vertices, matched
// continuously against the data stream. It also provides the structural
// helpers (adjacency, connectivity, path/tree classification) used by
// the decomposition algorithms.
package query

import (
	"fmt"
	"sort"
	"strings"
)

// Wildcard is the vertex label that matches any data vertex label.
const Wildcard = "*"

// Vertex is a query vertex. Name is the variable name used to refer to
// the vertex in the textual format; Label is a required data-vertex
// label, or Wildcard/"" to match any label.
type Vertex struct {
	Name  string
	Label string
}

// Edge is a directed query edge between vertices identified by index.
type Edge struct {
	Src  int
	Dst  int
	Type string
}

// Graph is a query graph.
type Graph struct {
	Vertices []Vertex
	Edges    []Edge
}

// NewPath builds a directed path query v0 -t0-> v1 -t1-> ... with all
// vertex labels set to label (Wildcard for unlabeled queries).
func NewPath(label string, types ...string) *Graph {
	g := &Graph{}
	for i := 0; i <= len(types); i++ {
		g.Vertices = append(g.Vertices, Vertex{Name: fmt.Sprintf("v%d", i), Label: label})
	}
	for i, t := range types {
		g.Edges = append(g.Edges, Edge{Src: i, Dst: i + 1, Type: t})
	}
	return g
}

// AddVertex appends a vertex and returns its index.
func (g *Graph) AddVertex(name, label string) int {
	g.Vertices = append(g.Vertices, Vertex{Name: name, Label: label})
	return len(g.Vertices) - 1
}

// AddEdge appends a directed edge src -> dst with the given type and
// returns its index.
func (g *Graph) AddEdge(src, dst int, etype string) int {
	g.Edges = append(g.Edges, Edge{Src: src, Dst: dst, Type: etype})
	return len(g.Edges) - 1
}

// Validate checks structural sanity: at least one edge, all endpoint
// indices in range, no self-loops (the engine's matchers require
// distinct endpoints, as do all of the paper's query classes), and
// non-empty edge types.
func (g *Graph) Validate() error {
	if len(g.Edges) == 0 {
		return fmt.Errorf("query: graph has no edges")
	}
	for i, e := range g.Edges {
		if e.Src < 0 || e.Src >= len(g.Vertices) || e.Dst < 0 || e.Dst >= len(g.Vertices) {
			return fmt.Errorf("query: edge %d references vertex out of range", i)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("query: edge %d is a self-loop", i)
		}
		if e.Type == "" {
			return fmt.Errorf("query: edge %d has empty type", i)
		}
	}
	return nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Vertices: append([]Vertex(nil), g.Vertices...),
		Edges:    append([]Edge(nil), g.Edges...),
	}
	return c
}

// LabelOf returns the effective label constraint of vertex v: the empty
// string and Wildcard both mean "unconstrained" and normalize to
// Wildcard.
func (g *Graph) LabelOf(v int) string {
	l := g.Vertices[v].Label
	if l == "" {
		return Wildcard
	}
	return l
}

// TypeFootprint returns the set of edge types the query can ever match
// — sorted and distinct — together with whether that footprint is
// exact. The footprint is inexact when some edge carries the Wildcard
// type, in which case no static edge-type filter is sound for the
// query and callers (the sharded runtime's filtered replicas) must
// fall back to full replication. A matcher for the query only ever
// binds data edges whose type is in an exact footprint, so a graph
// restricted to those types yields identical matches.
func (g *Graph) TypeFootprint() (types []string, exact bool) {
	exact = true
	seen := make(map[string]bool, len(g.Edges))
	for _, e := range g.Edges {
		if e.Type == Wildcard {
			exact = false
			continue
		}
		if !seen[e.Type] {
			seen[e.Type] = true
			types = append(types, e.Type)
		}
	}
	sort.Strings(types)
	return types, exact
}

// IncidentEdges returns the indices of edges incident to vertex v, in
// edge order.
func (g *Graph) IncidentEdges(v int) []int {
	var out []int
	for i, e := range g.Edges {
		if e.Src == v || e.Dst == v {
			out = append(out, i)
		}
	}
	return out
}

// Degree reports the number of edges incident to vertex v.
func (g *Graph) Degree(v int) int {
	d := 0
	for _, e := range g.Edges {
		if e.Src == v || e.Dst == v {
			d++
		}
	}
	return d
}

// EdgeVertices returns the sorted distinct vertex indices touched by the
// given edge indices.
func (g *Graph) EdgeVertices(edgeIdx []int) []int {
	seen := make(map[int]bool, 2*len(edgeIdx))
	for _, ei := range edgeIdx {
		seen[g.Edges[ei].Src] = true
		seen[g.Edges[ei].Dst] = true
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Connected reports whether the query graph is weakly connected over the
// vertices that have at least one incident edge.
func (g *Graph) Connected() bool {
	if len(g.Edges) == 0 {
		return true
	}
	adj := make(map[int][]int)
	for _, e := range g.Edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
		adj[e.Dst] = append(adj[e.Dst], e.Src)
	}
	start := g.Edges[0].Src
	seen := map[int]bool{start: true}
	queue := []int{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return len(seen) == len(adj)
}

// IsPath reports whether the query is a simple (possibly directed-any-way)
// path: connected, with exactly two vertices of degree 1 and the rest of
// degree 2, and no cycles.
func (g *Graph) IsPath() bool {
	if len(g.Edges) == 0 || !g.Connected() {
		return false
	}
	deg1, degOther := 0, 0
	for v := range g.Vertices {
		switch d := g.Degree(v); {
		case d == 0:
			// isolated vertex: not part of the path
		case d == 1:
			deg1++
		case d == 2:
		default:
			degOther++
		}
	}
	return deg1 == 2 && degOther == 0 && len(g.Edges) == g.activeVertexCount()-1
}

// IsTree reports whether the query is connected and acyclic (|E| = |V|-1
// over vertices with incident edges).
func (g *Graph) IsTree() bool {
	return g.Connected() && len(g.Edges) == g.activeVertexCount()-1
}

func (g *Graph) activeVertexCount() int {
	n := 0
	for v := range g.Vertices {
		if g.Degree(v) > 0 {
			n++
		}
	}
	return n
}

// String renders the textual format parsed by Parse.
func (g *Graph) String() string {
	var b strings.Builder
	for _, v := range g.Vertices {
		label := v.Label
		if label == "" {
			label = Wildcard
		}
		fmt.Fprintf(&b, "v %s %s\n", v.Name, label)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "e %s %s %s\n", g.Vertices[e.Src].Name, g.Vertices[e.Dst].Name, e.Type)
	}
	return b.String()
}

// Parse reads the textual query format:
//
//	# comment
//	v <name> [label]
//	e <srcName> <dstName> <type>
//
// Vertices referenced by an edge before being declared are created with a
// wildcard label.
func Parse(text string) (*Graph, error) {
	g := &Graph{}
	index := make(map[string]int)
	ensure := func(name, label string) int {
		if i, ok := index[name]; ok {
			if label != Wildcard && g.Vertices[i].Label == Wildcard {
				g.Vertices[i].Label = label
			}
			return i
		}
		i := g.AddVertex(name, label)
		index[name] = i
		return i
	}
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "v":
			if len(f) < 2 || len(f) > 3 {
				return nil, fmt.Errorf("query: line %d: want 'v name [label]'", ln+1)
			}
			label := Wildcard
			if len(f) == 3 {
				label = f[2]
			}
			ensure(f[1], label)
		case "e":
			if len(f) != 4 {
				return nil, fmt.Errorf("query: line %d: want 'e src dst type'", ln+1)
			}
			s := ensure(f[1], Wildcard)
			d := ensure(f[2], Wildcard)
			g.AddEdge(s, d, f[3])
		default:
			return nil, fmt.Errorf("query: line %d: unknown record %q", ln+1, f[0])
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
