package ingest

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"streamgraph/internal/stream"
)

// NTriplesConfig parameterizes an N-Triples source.
type NTriplesConfig struct {
	// VertexLabel is assigned to every vertex; empty means wildcard
	// semantics downstream (the engine treats "" and "*" alike).
	VertexLabel string
	// KeepFullIRI preserves complete IRIs as vertex names and edge
	// types; by default they are shortened to the local name (the part
	// after the last '#' or '/'), which is what the LSBench schema
	// tables use.
	KeepFullIRI bool
	// OnError selects Fail (default) or Skip for malformed lines.
	OnError ErrorPolicy
}

// NTriplesSource streams edges from RDF N-Triples:
//
//	<subject> <predicate> <object> .
//
// Subjects and objects become vertices (IRIs, blank nodes "_:x" and
// literals are all accepted as vertex names); predicates become edge
// types. Timestamps are assigned by arrival order (1, 2, ...), the
// usual convention when replaying an RDF stream archive.
type NTriplesSource struct {
	sc      *bufio.Scanner
	cfg     NTriplesConfig
	line    int
	ts      int64
	skipped int64
}

// NewNTriplesSource returns a source over r.
func NewNTriplesSource(r io.Reader, cfg NTriplesConfig) *NTriplesSource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &NTriplesSource{sc: sc, cfg: cfg}
}

// Skipped reports how many lines were dropped under the Skip policy.
func (s *NTriplesSource) Skipped() int64 { return s.skipped }

// Next implements stream.Source.
func (s *NTriplesSource) Next() (stream.Edge, error) {
	for s.sc.Scan() {
		s.line++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		subj, pred, obj, err := parseTriple(line)
		if err != nil {
			if s.cfg.OnError == Skip {
				s.skipped++
				continue
			}
			return stream.Edge{}, fmt.Errorf("ingest: line %d: %v", s.line, err)
		}
		s.ts++
		return stream.Edge{
			Src: s.term(subj), SrcLabel: s.cfg.VertexLabel,
			Dst: s.term(obj), DstLabel: s.cfg.VertexLabel,
			Type: s.term(pred),
			TS:   s.ts,
		}, nil
	}
	if err := s.sc.Err(); err != nil {
		return stream.Edge{}, err
	}
	return stream.Edge{}, io.EOF
}

func (s *NTriplesSource) term(t string) string {
	if s.cfg.KeepFullIRI {
		return t
	}
	return localName(t)
}

// localName shortens an IRI to its fragment or last path segment;
// literals and blank nodes pass through unchanged.
func localName(t string) string {
	if !strings.HasPrefix(t, "<") {
		return t
	}
	inner := strings.Trim(t, "<>")
	if i := strings.LastIndexAny(inner, "#/"); i >= 0 && i+1 < len(inner) {
		return inner[i+1:]
	}
	return inner
}

// parseTriple splits one N-Triples statement into its three terms. It
// handles IRIs (<...>), blank nodes (_:name) and literals ("..." with
// optional @lang or ^^<datatype>), and requires the terminating '.'.
func parseTriple(line string) (subj, pred, obj string, err error) {
	rest := line
	subj, rest, err = readTerm(rest)
	if err != nil {
		return "", "", "", fmt.Errorf("subject: %v", err)
	}
	pred, rest, err = readTerm(rest)
	if err != nil {
		return "", "", "", fmt.Errorf("predicate: %v", err)
	}
	if !strings.HasPrefix(pred, "<") {
		return "", "", "", fmt.Errorf("predicate %q is not an IRI", pred)
	}
	obj, rest, err = readTerm(rest)
	if err != nil {
		return "", "", "", fmt.Errorf("object: %v", err)
	}
	rest = strings.TrimSpace(rest)
	if rest != "." {
		return "", "", "", fmt.Errorf("missing terminating '.' (got %q)", rest)
	}
	return subj, pred, obj, nil
}

// readTerm consumes one RDF term from the front of s.
func readTerm(s string) (term, rest string, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", "", fmt.Errorf("unexpected end of statement")
	}
	switch s[0] {
	case '<':
		end := strings.IndexByte(s, '>')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated IRI")
		}
		return s[:end+1], s[end+1:], nil
	case '"':
		// Scan to the closing quote, honoring backslash escapes.
		i := 1
		for i < len(s) {
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			i++
		}
		if i >= len(s) {
			return "", "", fmt.Errorf("unterminated literal")
		}
		lit := s[1:i]
		rest = s[i+1:]
		// Swallow a language tag or datatype suffix.
		switch {
		case strings.HasPrefix(rest, "@"):
			j := 1
			for j < len(rest) && rest[j] != ' ' && rest[j] != '\t' {
				j++
			}
			rest = rest[j:]
		case strings.HasPrefix(rest, "^^<"):
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				return "", "", fmt.Errorf("unterminated datatype IRI")
			}
			rest = rest[end+1:]
		}
		return unescapeLiteral(lit), rest, nil
	case '_':
		if !strings.HasPrefix(s, "_:") {
			return "", "", fmt.Errorf("malformed blank node")
		}
		j := 2
		for j < len(s) && s[j] != ' ' && s[j] != '\t' {
			j++
		}
		if j == 2 {
			return "", "", fmt.Errorf("empty blank node label")
		}
		return s[:j], s[j:], nil
	default:
		return "", "", fmt.Errorf("unrecognized term starting at %q", s[:1])
	}
}

func unescapeLiteral(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 >= len(s) {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
