// Package ingest adapts real-world input formats to the engine's edge
// stream: CSV records (the shape network-flow exports such as the
// paper's CAIDA traces arrive in) driven through the attr.Mapper layer,
// and RDF N-Triples (the shape of the paper's LSBench social stream).
// Every reader implements stream.Source and can feed core.Engine.Run
// directly.
package ingest

import (
	"encoding/csv"
	"fmt"
	"io"

	"streamgraph/internal/attr"
	"streamgraph/internal/stream"
)

// ErrorPolicy decides what a reader does with records it cannot use.
type ErrorPolicy int

const (
	// Fail stops the stream with a descriptive error (default).
	Fail ErrorPolicy = iota
	// Skip silently drops malformed records and keeps reading; the
	// reader counts them (see Skipped).
	Skip
)

// CSVConfig parameterizes a CSV source.
type CSVConfig struct {
	// Mapper converts a row (as an attr.Record keyed by the header) to
	// an edge. Required.
	Mapper *attr.Mapper
	// Comma is the field delimiter; zero defaults to ','.
	Comma rune
	// OnError selects Fail (default) or Skip for malformed rows and
	// rows the mapper rejects with an error. Rows filtered out by the
	// mapper's Where predicate are always skipped silently.
	OnError ErrorPolicy
}

// CSVSource streams edges from CSV input whose first row is a header
// naming the record fields.
type CSVSource struct {
	r       *csv.Reader
	cfg     CSVConfig
	header  []string
	line    int
	skipped int64
}

// NewCSVSource reads the header row and returns a source over the
// remaining rows.
func NewCSVSource(r io.Reader, cfg CSVConfig) (*CSVSource, error) {
	if cfg.Mapper == nil {
		return nil, fmt.Errorf("ingest: CSVConfig.Mapper is required")
	}
	cr := csv.NewReader(r)
	if cfg.Comma != 0 {
		cr.Comma = cfg.Comma
	}
	cr.FieldsPerRecord = -1 // we validate against the header ourselves
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("ingest: empty CSV input (missing header)")
	}
	if err != nil {
		return nil, fmt.Errorf("ingest: reading CSV header: %v", err)
	}
	h := make([]string, len(header))
	copy(h, header)
	return &CSVSource{r: cr, cfg: cfg, header: h, line: 1}, nil
}

// Header returns the column names.
func (s *CSVSource) Header() []string { return append([]string(nil), s.header...) }

// Skipped reports how many records were dropped under the Skip policy
// (malformed rows plus rows the mapper errored on; Where-filtered rows
// are not counted).
func (s *CSVSource) Skipped() int64 { return s.skipped }

// Next implements stream.Source.
func (s *CSVSource) Next() (stream.Edge, error) {
	for {
		row, err := s.r.Read()
		if err == io.EOF {
			return stream.Edge{}, io.EOF
		}
		s.line++
		if err != nil {
			if s.cfg.OnError == Skip {
				s.skipped++
				continue
			}
			return stream.Edge{}, fmt.Errorf("ingest: line %d: %v", s.line, err)
		}
		if len(row) != len(s.header) {
			if s.cfg.OnError == Skip {
				s.skipped++
				continue
			}
			return stream.Edge{}, fmt.Errorf("ingest: line %d: %d fields, header has %d",
				s.line, len(row), len(s.header))
		}
		rec := make(attr.Record, len(s.header))
		for i, name := range s.header {
			rec[name] = row[i]
		}
		e, ok, err := s.cfg.Mapper.Map(rec)
		if err != nil {
			if s.cfg.OnError == Skip {
				s.skipped++
				continue
			}
			return stream.Edge{}, fmt.Errorf("ingest: line %d: %v", s.line, err)
		}
		if !ok {
			continue // filtered by Where
		}
		return e, nil
	}
}

// NetflowMapper returns the mapper used throughout the paper's cyber
// experiments: endpoints from srcIP/dstIP (labeled "ip"), the edge type
// from the protocol field, the timestamp from ts — Section 5.1's "each
// network flow with the same protocol ... mapped to the same edge
// type".
func NetflowMapper(where *attr.Predicate) *attr.Mapper {
	return &attr.Mapper{
		SrcField: "srcIP", DstField: "dstIP",
		SrcLabel: "ip", DstLabel: "ip",
		TypeFields: []string{"proto"},
		TSField:    "ts",
		Where:      where,
	}
}
