package ingest

import (
	"io"
	"strings"
	"testing"
)

const sampleNT = `# a comment line
<http://ex.org/u/alice> <http://xmlns.com/foaf/0.1/knows> <http://ex.org/u/bob> .
<http://ex.org/u/bob> <http://ex.org/s#likes> <http://ex.org/post/42> .

_:b1 <http://ex.org/s#tagged> "golang rocks"@en .
<http://ex.org/u/carol> <http://ex.org/s#age> "29"^^<http://www.w3.org/2001/XMLSchema#integer> .
`

func TestNTriplesBasic(t *testing.T) {
	src := NewNTriplesSource(strings.NewReader(sampleNT), NTriplesConfig{VertexLabel: "node"})
	edges := drain(t, src)
	if len(edges) != 4 {
		t.Fatalf("got %d edges, want 4", len(edges))
	}
	e := edges[0]
	if e.Src != "alice" || e.Dst != "bob" || e.Type != "knows" {
		t.Fatalf("edge 0 = %+v", e)
	}
	if e.TS != 1 || edges[3].TS != 4 {
		t.Fatalf("arrival timestamps wrong: %d ... %d", e.TS, edges[3].TS)
	}
	if edges[1].Type != "likes" || edges[1].Dst != "42" {
		t.Fatalf("edge 1 = %+v", edges[1])
	}
	if edges[2].Src != "_:b1" || edges[2].Dst != "golang rocks" {
		t.Fatalf("edge 2 (blank node + literal) = %+v", edges[2])
	}
	if edges[3].Dst != "29" {
		t.Fatalf("edge 3 (typed literal) = %+v", edges[3])
	}
}

func TestNTriplesKeepFullIRI(t *testing.T) {
	src := NewNTriplesSource(strings.NewReader(sampleNT), NTriplesConfig{KeepFullIRI: true})
	edges := drain(t, src)
	if edges[0].Src != "<http://ex.org/u/alice>" {
		t.Fatalf("full IRI not preserved: %q", edges[0].Src)
	}
	if edges[0].Type != "<http://xmlns.com/foaf/0.1/knows>" {
		t.Fatalf("full predicate not preserved: %q", edges[0].Type)
	}
}

func TestNTriplesEscapedLiteral(t *testing.T) {
	nt := `<http://e/a> <http://e/says> "line1\nline\"2\\" .` + "\n"
	src := NewNTriplesSource(strings.NewReader(nt), NTriplesConfig{})
	edges := drain(t, src)
	if edges[0].Dst != "line1\nline\"2\\" {
		t.Fatalf("unescaping wrong: %q", edges[0].Dst)
	}
}

func TestNTriplesMalformedFail(t *testing.T) {
	for _, bad := range []string{
		`<http://e/a> <http://e/p> <http://e/b>`,           // missing dot
		`<http://e/a> <http://e/p> .`,                      // missing object
		`<http://e/a> "literal-predicate" <http://e/b> .`,  // literal predicate
		`<http://e/a <http://e/p> <http://e/b> .`,          // unterminated IRI
		`<http://e/a> <http://e/p> "unterminated .`,        // unterminated literal
		`<http://e/a> <http://e/p> <http://e/b> . trailer`, // trailing garbage
		`_: <http://e/p> <http://e/b> .`,                   // empty blank node
		`@prefix ex: <http://e/> .`,                        // Turtle, not N-Triples
	} {
		src := NewNTriplesSource(strings.NewReader(bad+"\n"), NTriplesConfig{})
		if _, err := src.Next(); err == nil || err == io.EOF {
			t.Errorf("malformed %q: err = %v, want parse error", bad, err)
		}
	}
}

func TestNTriplesMalformedSkip(t *testing.T) {
	nt := "<http://e/a> <http://e/p> <http://e/b> .\nbroken line\n<http://e/c> <http://e/p> <http://e/d> .\n"
	src := NewNTriplesSource(strings.NewReader(nt), NTriplesConfig{OnError: Skip})
	edges := drain(t, src)
	if len(edges) != 2 {
		t.Fatalf("got %d edges, want 2", len(edges))
	}
	if src.Skipped() != 1 {
		t.Fatalf("Skipped = %d, want 1", src.Skipped())
	}
	// Timestamps remain consecutive over surviving edges.
	if edges[0].TS != 1 || edges[1].TS != 2 {
		t.Fatalf("timestamps: %d, %d", edges[0].TS, edges[1].TS)
	}
}

func TestLocalNameEdgeCases(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"<http://e/path/leaf>", "leaf"},
		{"<http://e/frag#x>", "x"},
		{"<plain>", "plain"},
		{"<http://e/trailing/>", "http://e/trailing/"}, // nothing after separator
		{"bare", "bare"},
	} {
		if got := localName(tc.in); got != tc.want {
			t.Errorf("localName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
