package ingest

import (
	"io"
	"strings"
	"testing"

	"streamgraph/internal/attr"
	"streamgraph/internal/stream"
)

const flowCSV = `ts,srcIP,dstIP,proto,srcPort,dstPort
100,10.0.0.1,10.0.0.2,TCP,5555,443
101,10.0.0.2,10.0.0.3,UDP,53,53
102,10.0.0.3,10.0.0.1,ICMP,0,0
`

func drain(t *testing.T, src stream.Source) []stream.Edge {
	t.Helper()
	edges, err := stream.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	return edges
}

func TestCSVSourceBasic(t *testing.T) {
	src, err := NewCSVSource(strings.NewReader(flowCSV), CSVConfig{Mapper: NetflowMapper(nil)})
	if err != nil {
		t.Fatal(err)
	}
	edges := drain(t, src)
	if len(edges) != 3 {
		t.Fatalf("got %d edges, want 3", len(edges))
	}
	e := edges[0]
	if e.Src != "10.0.0.1" || e.Dst != "10.0.0.2" || e.Type != "TCP" || e.TS != 100 {
		t.Fatalf("edge 0 = %+v", e)
	}
	if e.SrcLabel != "ip" || e.DstLabel != "ip" {
		t.Fatalf("labels = %q/%q, want ip/ip", e.SrcLabel, e.DstLabel)
	}
	if got := src.Header(); len(got) != 6 || got[0] != "ts" {
		t.Fatalf("Header = %v", got)
	}
}

func TestCSVSourceWherePredicate(t *testing.T) {
	src, err := NewCSVSource(strings.NewReader(flowCSV), CSVConfig{
		Mapper: NetflowMapper(attr.MustPredicate("proto == TCP")),
	})
	if err != nil {
		t.Fatal(err)
	}
	edges := drain(t, src)
	if len(edges) != 1 || edges[0].Type != "TCP" {
		t.Fatalf("predicate filter failed: %+v", edges)
	}
	if src.Skipped() != 0 {
		t.Fatalf("Where-filtered rows must not count as skipped, got %d", src.Skipped())
	}
}

func TestCSVSourceMissingHeader(t *testing.T) {
	if _, err := NewCSVSource(strings.NewReader(""), CSVConfig{Mapper: NetflowMapper(nil)}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestCSVSourceRequiresMapper(t *testing.T) {
	if _, err := NewCSVSource(strings.NewReader(flowCSV), CSVConfig{}); err == nil {
		t.Fatal("nil mapper accepted")
	}
}

func TestCSVSourceMalformedRowFail(t *testing.T) {
	bad := "ts,srcIP,dstIP,proto\n100,10.0.0.1,10.0.0.2,TCP\n101,only-two-fields\n"
	src, err := NewCSVSource(strings.NewReader(bad), CSVConfig{Mapper: NetflowMapper(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err != nil {
		t.Fatalf("first row: %v", err)
	}
	if _, err := src.Next(); err == nil || err == io.EOF {
		t.Fatalf("malformed row: err = %v, want parse error", err)
	}
}

func TestCSVSourceMalformedRowSkip(t *testing.T) {
	bad := "ts,srcIP,dstIP,proto\n100,10.0.0.1,10.0.0.2,TCP\n101,only-two\nnot-a-ts,10.0.0.4,10.0.0.5,UDP\n103,10.0.0.6,10.0.0.7,GRE\n"
	src, err := NewCSVSource(strings.NewReader(bad), CSVConfig{Mapper: NetflowMapper(nil), OnError: Skip})
	if err != nil {
		t.Fatal(err)
	}
	edges := drain(t, src)
	if len(edges) != 2 {
		t.Fatalf("got %d edges, want 2 (TCP and GRE rows)", len(edges))
	}
	if src.Skipped() != 2 {
		t.Fatalf("Skipped = %d, want 2", src.Skipped())
	}
}

func TestCSVSourceCustomDelimiter(t *testing.T) {
	tsv := "ts\tsrcIP\tdstIP\tproto\n100\ta\tb\tTCP\n"
	src, err := NewCSVSource(strings.NewReader(tsv), CSVConfig{Mapper: NetflowMapper(nil), Comma: '\t'})
	if err != nil {
		t.Fatal(err)
	}
	edges := drain(t, src)
	if len(edges) != 1 || edges[0].Src != "a" {
		t.Fatalf("TSV parsing failed: %+v", edges)
	}
}
