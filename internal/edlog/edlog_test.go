package edlog

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"streamgraph/internal/stream"
)

func testEdge(i int) stream.Edge {
	return stream.Edge{
		Src: fmt.Sprintf("s%d", i), SrcLabel: "L",
		Dst: fmt.Sprintf("d%d", i), DstLabel: "L",
		Type: fmt.Sprintf("t%d", i%3), TS: int64(i),
	}
}

// fillLog appends nBatches batches of batchLen edges and returns the
// flat edge list.
func fillLog(t *testing.T, l *Log, nBatches, batchLen int) []stream.Edge {
	t.Helper()
	var all []stream.Edge
	for b := 0; b < nBatches; b++ {
		batch := make([]stream.Edge, batchLen)
		for i := range batch {
			batch[i] = testEdge(b*batchLen + i)
		}
		if err := l.Append(batch, uint64(b*batchLen)); err != nil {
			t.Fatalf("append: %v", err)
		}
		all = append(all, batch...)
	}
	return all
}

func replayAll(t *testing.T, l *Log) []stream.Edge {
	t.Helper()
	var got []stream.Edge
	next := uint64(0)
	err := l.Replay(func(edges []stream.Edge, baseSeq uint64) error {
		if baseSeq != next {
			t.Fatalf("replay out of order: base %d, want %d", baseSeq, next)
		}
		next = baseSeq + uint64(len(edges))
		got = append(got, edges...)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 512) // small segments force rotation
	if err != nil {
		t.Fatal(err)
	}
	want := fillLog(t, l, 12, 4)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Segments() < 2 {
		t.Fatalf("want rotation into >= 2 segments, got %d", l2.Segments())
	}
	if l2.EndSeq() != uint64(len(want)) {
		t.Fatalf("end seq %d, want %d", l2.EndSeq(), len(want))
	}
	got := replayAll(t, l2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: got %+v want %+v", i, got[i], want[i])
		}
	}

	// Appending after reopen continues the sequence in the same
	// active segment.
	if err := l2.Append([]stream.Edge{testEdge(len(want))}, uint64(len(want))); err != nil {
		t.Fatal(err)
	}
	if l2.EndSeq() != uint64(len(want))+1 {
		t.Fatalf("end seq after append %d", l2.EndSeq())
	}
}

func TestAppendOverlapRejected(t *testing.T) {
	l, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fillLog(t, l, 2, 4)
	if err := l.Append([]stream.Edge{testEdge(0)}, 3); err == nil {
		t.Fatal("overlapping append not rejected")
	}
}

// lastSegment returns the path of the lexically last segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "edgelog-*.seg"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments in %s (%v)", dir, err)
	}
	sort.Strings(names)
	return names[len(names)-1]
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// assertPrefix opens dir and asserts the recovered log replays an
// exact batch-aligned prefix of want.
func assertPrefix(t *testing.T, dir string, want []stream.Edge, batchLen int) int {
	t.Helper()
	l, err := Open(dir, 512)
	if err != nil {
		t.Fatalf("open after truncation: %v", err)
	}
	defer l.Close()
	got := replayAll(t, l)
	if len(got)%batchLen != 0 {
		t.Fatalf("recovered %d edges: not a batch boundary (batch %d)", len(got), batchLen)
	}
	if len(got) > len(want) {
		t.Fatalf("recovered %d edges, more than the %d written", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("recovered edge %d diverges: got %+v want %+v", i, got[i], want[i])
		}
	}
	if l.EndSeq() != uint64(len(got)) {
		t.Fatalf("end seq %d after recovering %d edges", l.EndSeq(), len(got))
	}
	return len(got)
}

// TestTruncationSweep is the torn-write recovery sweep: for every
// possible truncation point of the final segment, Open must recover a
// valid batch-aligned prefix without error.
func TestTruncationSweep(t *testing.T) {
	master := t.TempDir()
	l, err := Open(master, 512)
	if err != nil {
		t.Fatal(err)
	}
	const batchLen = 4
	want := fillLog(t, l, 12, batchLen)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	lastPath := lastSegment(t, master)
	info, err := os.Stat(lastPath)
	if err != nil {
		t.Fatal(err)
	}
	size := info.Size()
	for cut := size - 1; cut >= 0; cut-- {
		dir := copyDir(t, master)
		if err := os.Truncate(filepath.Join(dir, filepath.Base(lastPath)), cut); err != nil {
			t.Fatal(err)
		}
		n := assertPrefix(t, dir, want, batchLen)
		if cut == 0 && n == 0 {
			// The fully torn final segment must not block further
			// recovery: the sealed segments before it survive intact.
			continue
		}
	}
}

// TestCorruptionSweep flips single bytes in the final segment: Open
// must recover the prefix before the flipped record. A flip in a
// sealed segment is detected as corruption.
func TestCorruptionSweep(t *testing.T) {
	master := t.TempDir()
	l, err := Open(master, 512)
	if err != nil {
		t.Fatal(err)
	}
	const batchLen = 4
	want := fillLog(t, l, 12, batchLen)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	lastPath := lastSegment(t, master)
	data, err := os.ReadFile(lastPath)
	if err != nil {
		t.Fatal(err)
	}
	stride := len(data)/37 + 1 // sample offsets; full sweep is slow under -race
	for off := 0; off < len(data); off += stride {
		dir := copyDir(t, master)
		p := filepath.Join(dir, filepath.Base(lastPath))
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x5a
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		assertPrefix(t, dir, want, batchLen)
	}

	// A flipped byte in a sealed segment must fail Open loudly.
	names, _ := filepath.Glob(filepath.Join(master, "edgelog-*.seg"))
	sort.Strings(names)
	if len(names) >= 2 {
		dir := copyDir(t, master)
		p := filepath.Join(dir, filepath.Base(names[0]))
		sealed, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		sealed[len(sealed)/2] ^= 0x5a
		if err := os.WriteFile(p, sealed, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, 512); err == nil {
			t.Fatal("corrupt sealed segment not detected")
		}
	}
}

func TestTrimBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := fillLog(t, l, 24, 4)
	segs := l.Segments()
	if segs < 3 {
		t.Fatalf("want >= 3 segments, got %d", segs)
	}

	// A keepSeq of 0 pins everything regardless of timestamps.
	if n := l.TrimBefore(1<<62, 0); n != 0 {
		t.Fatalf("trim with keepSeq 0 deleted %d segments", n)
	}
	// A cutoff of 0 keeps everything regardless of keepSeq.
	if n := l.TrimBefore(0, 1<<60); n != 0 {
		t.Fatalf("trim with cutoff 0 deleted %d segments", n)
	}
	// Everything expired and covered: all sealed segments go, the
	// active one stays.
	if n := l.TrimBefore(1<<62, 1<<60); n != segs-1 {
		t.Fatalf("trim deleted %d segments, want %d", n, segs-1)
	}
	if l.Segments() != 1 {
		t.Fatalf("%d segments left, want 1", l.Segments())
	}
	if l.EndSeq() != uint64(len(want)) {
		t.Fatalf("end seq %d after trim", l.EndSeq())
	}
	names, _ := filepath.Glob(filepath.Join(dir, "edgelog-*.seg"))
	if len(names) != 1 {
		t.Fatalf("%d segment files on disk, want 1", len(names))
	}
}

func TestEmptyLog(t *testing.T) {
	l, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.EndSeq() != 0 || l.Segments() != 0 || l.DiskBytes() != 0 {
		t.Fatalf("empty log reports end=%d segs=%d bytes=%d", l.EndSeq(), l.Segments(), l.DiskBytes())
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, l); len(got) != 0 {
		t.Fatalf("empty log replayed %d edges", len(got))
	}
}
