// Package edlog implements the durable, segment-backed form of the
// shard runtime's EdgeLog: an append-only sequence of admitted edge
// batches on disk, bounded by deleting whole sealed segments once the
// window (and every snapshot that might replay them) has moved past.
//
// Layout. A log is a directory of segment files named
// edgelog-<firstSeq>.seg (zero-padded so lexical order is seq order).
// A segment is a sequence of records:
//
//	u32  payload length (little-endian)
//	u32  CRC-32C of the payload (little-endian)
//	payload:
//	     uvarint  base arrival seq of the batch
//	     edge list in the dshard wire encoding (uvarint count, then
//	     each edge as five length-prefixed strings + zigzag-varint
//	     timestamp)
//
// One record is one admitted batch, so record boundaries are exactly
// the router's batch boundaries (and therefore frame boundaries on the
// wire and checkpoint boundaries in recovery).
//
// Crash safety. Appends go to the tail of the active (last) segment;
// a crash can therefore tear at most the final record of the final
// segment. Open validates every record's length and CRC and, on the
// last segment only, truncates the file back to the last valid record
// — a torn tail write recovers to the previous batch boundary. A bad
// record in a sealed (non-last) segment is real corruption and fails
// Open. Rotation seals the active segment once it exceeds the
// configured size and starts a new file, so window trimming can delete
// whole sealed files without rewriting anything.
//
// Durability is explicit: Append writes through the OS but does not
// fsync; callers decide the boundary (the shard router syncs before
// publishing a checkpoint, so a checkpoint never covers edges the log
// could still lose). See docs/PERSISTENCE.md for the trade-offs.
package edlog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"streamgraph/internal/dshard"
	"streamgraph/internal/stream"
)

// DefaultSegmentBytes is the rotation threshold when Open is given a
// non-positive one.
const DefaultSegmentBytes = 4 << 20

// maxRecordBytes bounds a single record's payload, mirroring
// dshard.MaxFrame: a corrupt length prefix must not drive a huge
// allocation, and any batch that fits a wire frame fits a record.
const maxRecordBytes = 64 << 20

const recordHeader = 8 // u32 length + u32 crc

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segment is the in-memory index entry for one on-disk segment file.
type segment struct {
	path     string
	firstSeq uint64 // base seq of the first record
	endSeq   uint64 // seq one past the last edge
	maxTS    int64  // largest timestamp in the segment
	bytes    int64
}

// Log is an open durable edge log. It is not safe for concurrent use;
// the shard router appends under its ingest lock, matching the
// in-memory EdgeLog's single-appender contract.
type Log struct {
	dir      string
	segBytes int64
	segs     []segment
	active   *os.File // tail of segs, open for append; nil when empty
	buf      []byte
}

// Open opens (or creates) the log in dir, validating every record and
// truncating a torn tail write back to the last valid record.
// segmentBytes is the rotation threshold (DefaultSegmentBytes when
// <= 0).
func Open(dir string, segmentBytes int64) (*Log, error) {
	if segmentBytes <= 0 {
		segmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("edlog: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "edgelog-*.seg"))
	if err != nil {
		return nil, fmt.Errorf("edlog: %w", err)
	}
	sort.Strings(names) // zero-padded first seq: lexical order = seq order
	l := &Log{dir: dir, segBytes: segmentBytes}
	for i, name := range names {
		last := i == len(names)-1
		seg, err := l.scanSegment(name, last)
		if err != nil {
			return nil, err
		}
		if seg.bytes == 0 {
			// A rotation that crashed before its first record, or a
			// fully torn single-record segment: drop the empty file.
			if err := os.Remove(name); err != nil {
				return nil, fmt.Errorf("edlog: %w", err)
			}
			continue
		}
		l.segs = append(l.segs, seg)
	}
	if n := len(l.segs); n > 0 {
		f, err := os.OpenFile(l.segs[n-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("edlog: %w", err)
		}
		l.active = f
	}
	return l, nil
}

// scanSegment validates one segment file. For the last segment a
// trailing invalid record is a torn write: the file is truncated back
// to the last valid boundary. For sealed segments it is corruption.
func (l *Log) scanSegment(path string, last bool) (segment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segment{}, fmt.Errorf("edlog: %w", err)
	}
	seg := segment{path: path, maxTS: -1 << 62}
	valid := int64(0)
	first := true
	for off := 0; off < len(data); {
		rest := data[off:]
		if len(rest) < recordHeader {
			break // torn header
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n == 0 || n > maxRecordBytes || uint64(len(rest)-recordHeader) < uint64(n) {
			break // torn or insane length
		}
		payload := rest[recordHeader : recordHeader+int(n)]
		if crc32.Checksum(payload, crcTable) != sum {
			break // torn payload
		}
		baseSeq, edges, err := decodePayload(payload)
		if err != nil {
			break // CRC passed but codec failed: treat as invalid record
		}
		if first {
			seg.firstSeq = baseSeq
			first = false
		}
		seg.endSeq = baseSeq + uint64(len(edges))
		for _, e := range edges {
			if e.TS > seg.maxTS {
				seg.maxTS = e.TS
			}
		}
		off += recordHeader + int(n)
		valid = int64(off)
	}
	if valid < int64(len(data)) {
		if !last {
			return segment{}, fmt.Errorf("edlog: corrupt record in sealed segment %s at offset %d", path, valid)
		}
		if err := os.Truncate(path, valid); err != nil {
			return segment{}, fmt.Errorf("edlog: %w", err)
		}
	}
	seg.bytes = valid
	return seg, nil
}

func decodePayload(p []byte) (uint64, []stream.Edge, error) {
	baseSeq, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("edlog: bad base seq")
	}
	edges, rest, err := dshard.DecodeEdgeList(p[n:])
	if err != nil {
		return 0, nil, err
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("edlog: %d trailing bytes in record", len(rest))
	}
	return baseSeq, edges, nil
}

// Append writes one admitted batch as a single record, rotating to a
// fresh segment first when the active one is full. The write reaches
// the OS but is not fsynced; call Sync at durability boundaries.
func (l *Log) Append(edges []stream.Edge, baseSeq uint64) error {
	if len(edges) == 0 {
		return nil
	}
	if n := len(l.segs); n > 0 && baseSeq < l.segs[n-1].endSeq {
		return fmt.Errorf("edlog: append at seq %d overlaps log end %d", baseSeq, l.segs[n-1].endSeq)
	}
	payload := binary.AppendUvarint(l.buf[:0], baseSeq)
	payload = dshard.AppendEdgeList(payload, edges)
	l.buf = payload
	rec := int64(recordHeader + len(payload))
	if n := len(l.segs); n == 0 || l.segs[n-1].bytes+rec > l.segBytes && l.segs[n-1].bytes > 0 {
		if err := l.rotate(baseSeq); err != nil {
			return err
		}
	}
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := l.active.Write(hdr[:]); err != nil {
		return fmt.Errorf("edlog: %w", err)
	}
	if _, err := l.active.Write(payload); err != nil {
		return fmt.Errorf("edlog: %w", err)
	}
	seg := &l.segs[len(l.segs)-1]
	if seg.bytes == 0 {
		seg.firstSeq = baseSeq
	}
	seg.endSeq = baseSeq + uint64(len(edges))
	for _, e := range edges {
		if e.TS > seg.maxTS {
			seg.maxTS = e.TS
		}
	}
	seg.bytes += rec
	return nil
}

// rotate seals the active segment and opens a fresh one whose name
// carries the base seq of its first record.
func (l *Log) rotate(firstSeq uint64) error {
	if l.active != nil {
		if err := l.active.Close(); err != nil {
			return fmt.Errorf("edlog: %w", err)
		}
		l.active = nil
	}
	path := filepath.Join(l.dir, fmt.Sprintf("edgelog-%020d.seg", firstSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("edlog: %w", err)
	}
	l.active = f
	l.segs = append(l.segs, segment{path: path, firstSeq: firstSeq, maxTS: -1 << 62})
	return nil
}

// Sync fsyncs the active segment: every record appended so far is
// durable once it returns.
func (l *Log) Sync() error {
	if l.active == nil {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("edlog: %w", err)
	}
	return nil
}

// Replay streams every retained record — the batch's edges and base
// seq, in arrival order — through fn. It reads from disk, not from
// the in-memory index, so it sees exactly what a restart would.
func (l *Log) Replay(fn func(edges []stream.Edge, baseSeq uint64) error) error {
	for _, seg := range l.segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return fmt.Errorf("edlog: %w", err)
		}
		if int64(len(data)) > seg.bytes {
			data = data[:seg.bytes]
		}
		for off := 0; off < len(data); {
			rest := data[off:]
			if len(rest) < recordHeader {
				return fmt.Errorf("edlog: truncated record in %s", seg.path)
			}
			n := binary.LittleEndian.Uint32(rest)
			sum := binary.LittleEndian.Uint32(rest[4:])
			if n == 0 || n > maxRecordBytes || uint64(len(rest)-recordHeader) < uint64(n) {
				return fmt.Errorf("edlog: bad record length in %s", seg.path)
			}
			payload := rest[recordHeader : recordHeader+int(n)]
			if crc32.Checksum(payload, crcTable) != sum {
				return fmt.Errorf("edlog: checksum mismatch in %s at offset %d", seg.path, off)
			}
			baseSeq, edges, err := decodePayload(payload)
			if err != nil {
				return err
			}
			if err := fn(edges, baseSeq); err != nil {
				return err
			}
			off += recordHeader + int(n)
		}
	}
	return nil
}

// TrimBefore deletes leading sealed segments that are both entirely
// expired (every timestamp < cutoff) and entirely covered by every
// snapshot (end seq <= keepSeq). Like the in-memory log it stops at
// the first segment that must stay, and it never deletes the active
// segment. It returns the number of segments deleted.
func (l *Log) TrimBefore(cutoff int64, keepSeq uint64) int {
	k := 0
	for k < len(l.segs)-1 && l.segs[k].maxTS < cutoff && l.segs[k].endSeq <= keepSeq {
		k++
	}
	for i := 0; i < k; i++ {
		os.Remove(l.segs[i].path)
	}
	if k > 0 {
		l.segs = append(l.segs[:0], l.segs[k:]...)
	}
	return k
}

// EndSeq reports the seq one past the last durable edge (0 when the
// log is empty).
func (l *Log) EndSeq() uint64 {
	if len(l.segs) == 0 {
		return 0
	}
	return l.segs[len(l.segs)-1].endSeq
}

// FirstSeq reports the base seq of the oldest retained record (0 when
// the log is empty).
func (l *Log) FirstSeq() uint64 {
	if len(l.segs) == 0 {
		return 0
	}
	return l.segs[0].firstSeq
}

// MaxTS reports the largest timestamp in the retained segments
// (math.MinInt64-ish sentinel when the log is empty); the durable
// window cutoff is computed from it.
func (l *Log) MaxTS() int64 {
	max := int64(-1 << 62)
	for _, seg := range l.segs {
		if seg.maxTS > max {
			max = seg.maxTS
		}
	}
	return max
}

// DiskBytes reports the total size of the retained segment files.
func (l *Log) DiskBytes() int64 {
	var n int64
	for _, seg := range l.segs {
		n += seg.bytes
	}
	return n
}

// Segments reports the number of retained segment files.
func (l *Log) Segments() int { return len(l.segs) }

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close closes the active segment file. The log must not be used
// afterwards.
func (l *Log) Close() error {
	if l.active == nil {
		return nil
	}
	err := l.active.Close()
	l.active = nil
	if err != nil {
		return fmt.Errorf("edlog: %w", err)
	}
	return nil
}

// IsSegmentFile reports whether name (a base name, no directory) is a
// log segment file. Exposed for tooling and tests that sweep a data
// directory.
func IsSegmentFile(name string) bool {
	return strings.HasPrefix(name, "edgelog-") && strings.HasSuffix(name, ".seg")
}
