package experiments

import "testing"

// TestDshardThroughputConsistency is the loopback differential the CI
// test job runs: every topology — serial, in-process shards, all
// slots remote over loopback TCP, and mixed local/remote — must report
// byte-identical match counts on the same workload.
func TestDshardThroughputConsistency(t *testing.T) {
	ds := NetflowDataset(ScaleSmall, 5)
	rows, err := DshardThroughput(DshardConfig{Dataset: ds, MaxEdges: 3000, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantModes := []string{"serial", "inproc", "remote", "mixed"}
	if len(rows) != len(wantModes) {
		t.Fatalf("got %d rows, want %d", len(rows), len(wantModes))
	}
	for i, r := range rows {
		if r.Mode != wantModes[i] {
			t.Fatalf("row %d mode %q, want %q", i, r.Mode, wantModes[i])
		}
		if r.Matches != rows[0].Matches {
			t.Errorf("%s: %d matches, serial found %d — the topologies diverge",
				r.Mode, r.Matches, rows[0].Matches)
		}
		if r.EdgesPerSec <= 0 {
			t.Errorf("%s: non-positive throughput", r.Mode)
		}
	}
	if rows[0].Matches == 0 {
		t.Fatal("workload produced no matches; consistency check is vacuous")
	}
	for _, r := range rows[2:] {
		if r.WireMB <= 0 {
			t.Errorf("%s: no wire traffic recorded", r.Mode)
		}
	}
}
