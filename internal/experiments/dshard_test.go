package experiments

import "testing"

// TestDshardThroughputConsistency is the loopback differential the CI
// test job runs: every topology — serial, in-process shards, all
// slots remote over loopback TCP (under both wire encodings), and
// mixed local/remote (ditto) — must report byte-identical match counts
// on the same workload, and the v2 encoding must spend materially
// fewer wire bytes than its v1 twin.
func TestDshardThroughputConsistency(t *testing.T) {
	ds := NetflowDataset(ScaleSmall, 5)
	rows, err := DshardThroughput(DshardConfig{Dataset: ds, MaxEdges: 3000, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantModes := []string{"serial", "inproc", "remote", "remote-v1", "mixed", "mixed-v1"}
	if len(rows) != len(wantModes) {
		t.Fatalf("got %d rows, want %d", len(rows), len(wantModes))
	}
	byMode := map[string]DshardRow{}
	for i, r := range rows {
		if r.Mode != wantModes[i] {
			t.Fatalf("row %d mode %q, want %q", i, r.Mode, wantModes[i])
		}
		byMode[r.Mode] = r
		if r.Matches != rows[0].Matches {
			t.Errorf("%s: %d matches, serial found %d — the topologies diverge",
				r.Mode, r.Matches, rows[0].Matches)
		}
		if r.EdgesPerSec <= 0 {
			t.Errorf("%s: non-positive throughput", r.Mode)
		}
	}
	if rows[0].Matches == 0 {
		t.Fatal("workload produced no matches; consistency check is vacuous")
	}
	for _, mode := range wantModes[2:] {
		r := byMode[mode]
		if r.WireMB <= 0 || r.WireMBRaw <= 0 || r.WireMBSent <= 0 {
			t.Errorf("%s: wire traffic not recorded: %+v", mode, r)
		}
		if r.WireMBSent > r.WireMBRaw {
			t.Errorf("%s: sent %f MiB exceeds raw %f MiB", mode, r.WireMBSent, r.WireMBRaw)
		}
	}
	// The whole point of the v2 encoding: same topology, same stream,
	// same matches, materially fewer bytes. The CI bench step enforces
	// the full ≥40% bar on the default workload; here a conservative
	// floor keeps the small synthetic workload from flaking.
	for _, pair := range [][2]string{{"remote", "remote-v1"}, {"mixed", "mixed-v1"}} {
		v2, v1 := byMode[pair[0]], byMode[pair[1]]
		if v2.WireProto != "v2" || v1.WireProto != "v1" {
			t.Fatalf("wire protocols mislabeled: %q=%q %q=%q",
				pair[0], v2.WireProto, pair[1], v1.WireProto)
		}
		if v2.WireMBSent >= v1.WireMBSent*0.75 {
			t.Errorf("%s: v2 sent %.3f MiB, v1 sent %.3f MiB — expected at least a 25%% saving",
				pair[0], v2.WireMBSent, v1.WireMBSent)
		}
	}
}
