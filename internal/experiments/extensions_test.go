package experiments

import (
	"bytes"
	"strings"
	"testing"

	"streamgraph/internal/query"
)

func extTestScale() Scale {
	return Scale{NetflowEdges: 6000, NetflowHosts: 800, LSBenchEdges: 6000, LSBenchUsers: 600, NYTArticles: 400}
}

func TestPlannerAblation(t *testing.T) {
	ds := NetflowDataset(extTestScale(), 3)
	q := query.NewPath("ip", "TCP", "ESP", "UDP")
	rows, err := PlannerAblation(ds, q, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("got %d rows, want at least greedy + exact-dp", len(rows))
	}
	byName := map[string]PlannerRow{}
	for _, r := range rows {
		byName[r.Plan] = r
		if r.PredWork <= 0 {
			t.Errorf("%s: non-positive predicted work", r.Plan)
		}
		if r.Runtime <= 0 {
			t.Errorf("%s: no runtime measured", r.Plan)
		}
	}
	g, okG := byName["greedy(Alg4)"]
	d, okD := byName["exact-dp"]
	if !okG || !okD {
		t.Fatalf("missing expected plans: %v", rows)
	}
	// All plans are exact: they must find the same matches.
	if g.Matches != d.Matches {
		t.Fatalf("greedy found %d matches, exact-dp %d — plans are not equivalent",
			g.Matches, d.Matches)
	}
	var buf bytes.Buffer
	PrintPlannerAblation(&buf, q, rows)
	if !strings.Contains(buf.String(), "exact-dp") {
		t.Fatalf("table missing exact-dp row:\n%s", buf.String())
	}
}

func TestPlannerAblationClampsTrainFrac(t *testing.T) {
	ds := NetflowDataset(extTestScale(), 3)
	q := query.NewPath("ip", "TCP", "UDP")
	if _, err := PlannerAblation(ds, q, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := PlannerAblation(ds, q, 1.5); err != nil {
		t.Fatal(err)
	}
}

func TestSketchAccuracy(t *testing.T) {
	ds := NetflowDataset(extTestScale(), 3)
	r := SketchAccuracy(ds, 1<<15, 4, 10)
	if r.SketchPaths < r.ExactPaths {
		t.Fatalf("sketch undercounts: %d < %d", r.SketchPaths, r.ExactPaths)
	}
	if r.OvercountRatio > 1.2 {
		t.Fatalf("overcount ratio %.3f too large for this sketch size", r.OvercountRatio)
	}
	if r.TopKOverlap < r.TopK-2 {
		t.Fatalf("top-%d overlap only %d", r.TopK, r.TopKOverlap)
	}
	if !r.PlansAgree {
		t.Fatal("sketch-driven decomposition disagrees with exact on the head-types probe query")
	}
	var buf bytes.Buffer
	PrintSketchReport(&buf, r)
	if !strings.Contains(buf.String(), "decomposition agreement: true") {
		t.Fatalf("report rendering:\n%s", buf.String())
	}
}
