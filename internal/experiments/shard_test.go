package experiments

import "testing"

// TestShardThroughputAgrees smoke-runs the runtime comparison on a
// tiny stream: every mode must process the full stream and report the
// same match count (exactness proper is proven differentially in
// internal/shard; this guards the harness wiring).
func TestShardThroughputAgrees(t *testing.T) {
	ds := NetflowDataset(tinyScale, 5)
	rows := ShardThroughput(ShardConfig{
		Dataset: ds, NumQueries: 4, Shards: []int{1, 2}, MaxEdges: 2000, Batch: 128,
	})
	if len(rows) != 4 { // serial, parallel, shard=1, shard=2
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for i, r := range rows {
		if r.Edges != 2000 {
			t.Fatalf("row %d (%s) processed %d edges, want 2000", i, r.Mode, r.Edges)
		}
		if r.Matches != rows[0].Matches {
			t.Fatalf("row %d (%s shards=%d) found %d matches, serial found %d",
				i, r.Mode, r.Shards, r.Matches, rows[0].Matches)
		}
		if r.EdgesPerSec <= 0 {
			t.Fatalf("row %d has nonpositive throughput", i)
		}
		if r.ReplicaEdges <= 0 {
			t.Fatalf("row %d (%s) reports no replicated edges", i, r.Mode)
		}
		// Edge-type-partitioned replicas: a shard row's total storage
		// must stay under full replication (shards x edges); the rotating
		// 2-type queries overlap, so it lands between 1x and shards-x.
		if r.Mode == "shard" && r.Shards > 1 && r.ReplicaEdges >= int64(r.Shards*r.Edges) {
			t.Fatalf("row %d: %d shards replicated %d edges — no better than full replication (%d)",
				i, r.Shards, r.ReplicaEdges, r.Shards*r.Edges)
		}
	}
	if rows[0].Matches == 0 {
		t.Fatal("workload produced no matches; comparison is vacuous")
	}
	if rows[0].ReplicaEdges != int64(rows[0].Edges) {
		t.Fatalf("serial row replicated %d edges, want exactly %d", rows[0].ReplicaEdges, rows[0].Edges)
	}
}
