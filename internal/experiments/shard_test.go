package experiments

import "testing"

// TestShardThroughputAgrees smoke-runs the runtime comparison on a
// tiny stream: every mode must process the full stream and report the
// same match count (exactness proper is proven differentially in
// internal/shard; this guards the harness wiring).
func TestShardThroughputAgrees(t *testing.T) {
	ds := NetflowDataset(tinyScale, 5)
	rows := ShardThroughput(ShardConfig{
		Dataset: ds, NumQueries: 4, Shards: []int{1, 2}, MaxEdges: 2000, Batch: 128,
	})
	if len(rows) != 4 { // serial, parallel, shard=1, shard=2
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for i, r := range rows {
		if r.Edges != 2000 {
			t.Fatalf("row %d (%s) processed %d edges, want 2000", i, r.Mode, r.Edges)
		}
		if r.Matches != rows[0].Matches {
			t.Fatalf("row %d (%s shards=%d) found %d matches, serial found %d",
				i, r.Mode, r.Shards, r.Matches, rows[0].Matches)
		}
		if r.EdgesPerSec <= 0 {
			t.Fatalf("row %d has nonpositive throughput", i)
		}
	}
	if rows[0].Matches == 0 {
		t.Fatal("workload produced no matches; comparison is vacuous")
	}
}
