package experiments

import "testing"

// TestMigrateThroughputAgrees smoke-runs the live-migration experiment
// on a tiny stream: every row must process the full stream, drive a
// nonzero migration schedule in the churn rows, fail none, and report
// the same match count as the unchurned baseline (exactness proper is
// proven differentially in internal/shard; this guards the harness
// wiring and the counter plumbing).
func TestMigrateThroughputAgrees(t *testing.T) {
	ds := NetflowDataset(tinyScale, 5)
	rows, err := MigrateThroughput(MigrateConfig{
		Dataset: ds, NumQueries: 4, Shards: 2, MaxEdges: 2000, Batch: 128, Every: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // baseline, churn-local, churn-remote
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[0].Matches == 0 {
		t.Fatal("workload produced no matches; comparison is vacuous")
	}
	for i, r := range rows {
		if r.Edges != 2000 {
			t.Fatalf("row %d (%s) processed %d edges, want 2000", i, r.Mode, r.Edges)
		}
		if r.Matches != rows[0].Matches {
			t.Fatalf("row %d (%s) found %d matches, baseline found %d",
				i, r.Mode, r.Matches, rows[0].Matches)
		}
		if r.Failed != 0 {
			t.Fatalf("row %d (%s) reports %d failed migrations", i, r.Mode, r.Failed)
		}
		wantChurn := r.Mode != "baseline"
		if gotChurn := r.Migrations > 0; gotChurn != wantChurn {
			t.Fatalf("row %d (%s) reports %d migrations", i, r.Mode, r.Migrations)
		}
		if wantChurn && (r.DrainP50NS <= 0 || r.BackfillEdges <= 0) {
			t.Fatalf("row %d (%s): drain p50 %d, backfill %d — counters not plumbed",
				i, r.Mode, r.DrainP50NS, r.BackfillEdges)
		}
	}
	if rows[2].Remote != 1 || rows[2].Local != 1 {
		t.Fatalf("churn-remote topology is %d local / %d remote, want 1/1", rows[2].Local, rows[2].Remote)
	}
}
