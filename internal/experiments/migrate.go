package experiments

import (
	"fmt"
	"io"
	"net"
	"runtime"
	"text/tabwriter"
	"time"

	"streamgraph/internal/core"
	"streamgraph/internal/dshard"
	"streamgraph/internal/shard"
)

// MigrateRow is one cell of the live-migration experiment: the sharded
// runtime driving the same queries over the same stream, with or
// without a steady migration churn rotating queries across slots
// mid-ingest. A Matches divergence across rows would falsify the
// exactly-once handoff (exactness itself is enforced by the
// differential tests in internal/shard).
type MigrateRow struct {
	// Mode is "baseline" (no churn), "churn-local" (rotation across
	// in-process slots) or "churn-remote" (rotation between a local
	// slot and a loopback-TCP dshard worker, so every migration pays
	// the drain barrier and the wire snapshot).
	Mode    string `json:"mode"`
	Local   int    `json:"local"`
	Remote  int    `json:"remote"`
	Queries int    `json:"queries"`
	Edges   int    `json:"edges"`
	Matches int64  `json:"matches"`
	// Migrations counts completed handoffs; Failed must stay 0.
	Migrations int64 `json:"migrations"`
	Failed     int64 `json:"failed"`
	// BackfillEdges is the total edge volume replayed into migration
	// targets to rebuild their replica windows.
	BackfillEdges int64 `json:"backfill_edges"`
	// DrainP50NS/DrainP99NS are the source-extraction latency
	// quantiles (sg_migration_drain_ns): how long ingest was paused
	// per handoff.
	DrainP50NS int64 `json:"drain_p50_ns"`
	DrainP99NS int64 `json:"drain_p99_ns"`
	// Elapsed and EdgesPerSec measure ingest-to-drain throughput;
	// Slowdown is EdgesPerSec relative to the baseline row (≤ 1 when
	// churn costs throughput).
	Elapsed     time.Duration `json:"elapsed_ns"`
	EdgesPerSec float64       `json:"edges_per_sec"`
	Slowdown    float64       `json:"slowdown"`
}

// MigrateConfig parameterizes the live-migration experiment.
type MigrateConfig struct {
	Dataset Dataset
	// NumQueries standing queries rotate through the dataset's edge
	// types (default 6).
	NumQueries int
	// Shards is the slot count of every topology (default 2).
	Shards int
	// Batch is the ingest chunk size (default 512).
	Batch int
	// Window is tW (default 2000).
	Window int64
	// Every is the churn cadence: one migration per Every ingested
	// batches (default 4).
	Every int
	// MaxEdges bounds the stream length (0 = whole dataset).
	MaxEdges int
}

func (c *MigrateConfig) defaults() {
	if c.NumQueries <= 0 {
		c.NumQueries = 6
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Batch <= 0 {
		c.Batch = 512
	}
	if c.Window <= 0 {
		c.Window = 2000
	}
	if c.Every <= 0 {
		c.Every = 4
	}
}

// MigrateThroughput measures what live query migration costs: the
// sharded runtime with no churn, then the same workload with a query
// rotated to the next slot every few batches — once across in-process
// slots, once across a process boundary (loopback-TCP dshard worker).
// Match counts are reported so a divergence is visible; the migration
// counters come from the runtime's own metrics registry, so the rows
// double as a truthfulness check against the reported schedule.
func MigrateThroughput(cfg MigrateConfig) ([]MigrateRow, error) {
	cfg.defaults()
	edges := cfg.Dataset.Edges
	if cfg.MaxEdges > 0 && cfg.MaxEdges < len(edges) {
		edges = edges[:cfg.MaxEdges]
	}
	queries := shardQueries(cfg.Dataset.Types, cfg.NumQueries)
	names := shardQueryNames(queries)
	qcfg := func() core.Config {
		return core.Config{Strategy: core.StrategySingleLazy, MaxMatchesPerSearch: 20000}
	}

	var rows []MigrateRow
	run := func(mode string, local int, remotes []string, churn bool) error {
		r := shard.New(shard.Config{Shards: local, Remotes: remotes, Window: cfg.Window})
		counted := make(chan int64, 1)
		go func() { counted <- r.Drain(nil) }()
		for _, name := range names {
			if err := r.Register(name, queries[name], qcfg()); err != nil {
				r.Close()
				<-counted
				return fmt.Errorf("register %s: %w", name, err)
			}
		}
		slots := r.NumShards()
		var migrations int
		start := time.Now()
		for lo, batch := 0, 0; lo < len(edges); lo, batch = lo+cfg.Batch, batch+1 {
			hi := lo + cfg.Batch
			if hi > len(edges) {
				hi = len(edges)
			}
			r.IngestBatch(edges[lo:hi])
			if churn && batch%cfg.Every == cfg.Every-1 {
				name := names[migrations%len(names)]
				if from, ok := r.Owner(name); ok {
					if err := r.Migrate(name, from, (from+1)%slots); err != nil {
						r.Close()
						<-counted
						return fmt.Errorf("%s: migrate %s: %w", mode, name, err)
					}
					migrations++
				}
			}
		}
		r.Close()
		elapsed := time.Since(start)

		row := MigrateRow{
			Mode: mode, Local: local, Remote: len(remotes),
			Queries: cfg.NumQueries, Edges: len(edges), Matches: <-counted,
			Elapsed:     elapsed,
			EdgesPerSec: float64(len(edges)) / elapsed.Seconds(),
		}
		for _, s := range r.Metrics().Snapshot() {
			switch s.Name {
			case "sg_migrations_completed_total":
				row.Migrations = s.Value
			case "sg_migrations_failed_total":
				row.Failed = s.Value
			case "sg_migration_backfill_edges_total":
				row.BackfillEdges = s.Value
			case "sg_migration_drain_ns":
				if s.Hist.Count() > 0 {
					row.DrainP50NS = s.Hist.Quantile(0.5)
					row.DrainP99NS = s.Hist.Quantile(0.99)
				}
			}
		}
		if row.Migrations != int64(migrations) {
			return fmt.Errorf("%s: drove %d migrations but the registry reports %d completed", mode, migrations, row.Migrations)
		}
		if len(rows) > 0 {
			row.Slowdown = row.EdgesPerSec / rows[0].EdgesPerSec
		} else {
			row.Slowdown = 1
		}
		rows = append(rows, row)
		return nil
	}

	if err := run("baseline", cfg.Shards, nil, false); err != nil {
		return nil, err
	}
	if err := run("churn-local", cfg.Shards, nil, true); err != nil {
		return nil, err
	}

	// One loopback worker stands in for the remote process; every
	// migration onto it ships a state snapshot over the wire, every
	// migration off it runs the checkpoint drain barrier.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := dshard.NewServer()
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		srv.Serve(ln)
	}()
	defer func() {
		srv.Close()
		<-serveDone
	}()
	if err := run("churn-remote", cfg.Shards-1, []string{ln.Addr().String()}, true); err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintMigrate renders the live-migration comparison as a table.
func PrintMigrate(w io.Writer, dataset string, rows []MigrateRow) {
	fmt.Fprintf(w, "== Live query migration: %s (GOMAXPROCS=%d) ==\n", dataset, runtime.GOMAXPROCS(0))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\tlocal\tremote\tedges/s\tvs base\tmatches\tmigrations\tfailed\tbackfill\tdrain p50\tdrain p99\telapsed")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t%.2fx\t%d\t%d\t%d\t%d\t%s\t%s\t%v\n",
			r.Mode, r.Local, r.Remote, r.EdgesPerSec, r.Slowdown, r.Matches,
			r.Migrations, r.Failed, r.BackfillEdges,
			lagCell(r.DrainP50NS), lagCell(r.DrainP99NS), r.Elapsed.Round(time.Millisecond))
	}
	tw.Flush()
}
