package experiments

import (
	"fmt"
	"io"
	"time"

	"streamgraph/internal/core"
	"streamgraph/internal/decompose"
	"streamgraph/internal/plan"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/sketch"
)

// This file implements the extension experiments that go beyond the
// paper's evaluation: the cost-based planner ablation (greedy Algorithm
// 4 vs the exact dynamic program vs the genetic search) and the
// sketch-vs-exact statistics accuracy study (the gsketch direction of
// Sections 2.2 and 7).

// PlannerRow reports one decomposition plan: its predicted cost under
// the wedge-based model and the behavior measured by executing it.
type PlannerRow struct {
	Plan       string
	Leaves     [][]int
	PredWork   float64
	PredSpace  float64
	Runtime    time.Duration
	PeakStored int64
	Matches    int64
}

// PlannerAblation trains statistics on a prefix of the dataset, plans q
// with the greedy, exact-DP and genetic optimizers, executes each plan
// (lazy execution, identical engine configuration) over the remainder
// of the stream, and reports predicted vs measured behavior.
func PlannerAblation(ds Dataset, q *query.Graph, trainFrac float64) ([]PlannerRow, error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		trainFrac = 0.4
	}
	cut := int(float64(len(ds.Edges)) * trainFrac)
	c := selectivity.NewCollector()
	c.AddAll(ds.Edges[:cut])
	p := &plan.Planner{Stats: c, AvgDegree: c.AvgDegreeEstimate()}

	greedyEng, err := core.New(q, core.Config{Strategy: core.StrategyPathLazy, Stats: c})
	if err != nil {
		return nil, err
	}
	type cand struct {
		name   string
		leaves [][]int
	}
	cands := []cand{{"greedy(Alg4)", greedyEng.Tree().LeafSets()}}
	if dpLeaves, _, err := p.Optimal(q); err == nil {
		cands = append(cands, cand{"exact-dp", dpLeaves})
	}
	if gaLeaves, _, err := p.Genetic(q, plan.GeneticConfig{Seed: 1}); err == nil {
		cands = append(cands, cand{"genetic", gaLeaves})
	}

	var rows []PlannerRow
	for _, cd := range cands {
		sc, err := p.ScoreLeaves(q, cd.leaves)
		if err != nil {
			return nil, fmt.Errorf("scoring %s: %v", cd.name, err)
		}
		eng, err := core.New(q, core.Config{
			Strategy: core.StrategySingleLazy, Leaves: cd.leaves, Stats: c,
		})
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		var matches int64
		for _, e := range ds.Edges[cut:] {
			matches += int64(len(eng.ProcessEdge(e)))
		}
		rows = append(rows, PlannerRow{
			Plan: cd.name, Leaves: cd.leaves,
			PredWork: sc.Work, PredSpace: sc.Space,
			Runtime: time.Since(t0), PeakStored: eng.Stats().Tree.PeakStored,
			Matches: matches,
		})
	}
	return rows, nil
}

// PrintPlannerAblation renders planner rows as a table.
func PrintPlannerAblation(w io.Writer, q *query.Graph, rows []PlannerRow) {
	fmt.Fprintln(w, "== Planner ablation: greedy vs cost-based decomposition ==")
	fmt.Fprintf(w, "%-14s %-30s %12s %12s %12s %12s %10s\n",
		"plan", "leaves", "pred.work", "pred.space", "runtime", "peak-stored", "matches")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-30s %12.3f %12.0f %12v %12d %10d\n",
			r.Plan, leavesString(q, r.Leaves), r.PredWork, r.PredSpace,
			r.Runtime.Round(time.Millisecond), r.PeakStored, r.Matches)
	}
}

func leavesString(q *query.Graph, leaves [][]int) string {
	s := ""
	for i, leaf := range leaves {
		if i > 0 {
			s += "|"
		}
		for j, ei := range leaf {
			if j > 0 {
				s += ","
			}
			s += q.Edges[ei].Type
		}
	}
	return s
}

// SketchReport summarizes the accuracy of the bounded-memory statistics
// estimator against the exact collector on one dataset.
type SketchReport struct {
	Dataset        string
	Edges          int
	ExactPaths     int64
	SketchPaths    int64
	OvercountRatio float64 // SketchPaths / ExactPaths
	TopK           int
	TopKOverlap    int  // how many of the exact top-K shapes the sketch also ranks top-K
	PlansAgree     bool // PathDecompose agreement on the probe query
	SketchBytes    int
}

// SketchAccuracy feeds the dataset through both statistics backends and
// compares the resulting distributions and decompositions. The probe
// query is a 4-edge path over the dataset's four most frequent types
// (distribution heads are where estimation errors would change plans).
func SketchAccuracy(ds Dataset, width, depth, topK int) SketchReport {
	exact := selectivity.NewCollector()
	est := sketch.NewEstimator(width, depth, 1)
	for _, e := range ds.Edges {
		exact.Add(e)
		est.Add(e)
	}
	r := SketchReport{
		Dataset: ds.Name, Edges: len(ds.Edges),
		ExactPaths: exact.PathTotal(), SketchPaths: est.PathTotal(),
		TopK: topK, SketchBytes: est.MemoryBytes(),
	}
	if r.ExactPaths > 0 {
		r.OvercountRatio = float64(r.SketchPaths) / float64(r.ExactPaths)
	}
	exTop := map[string]bool{}
	for i, h := range exact.PathHistogram() {
		if i >= topK {
			break
		}
		exTop[h.Key] = true
	}
	for i, h := range est.PathHistogram() {
		if i >= topK {
			break
		}
		if exTop[h.Key] {
			r.TopKOverlap++
		}
	}
	// Probe decomposition: a path over the four most frequent types.
	hist := exact.EdgeHistogram()
	if len(hist) >= 4 {
		q := query.NewPath(query.Wildcard, hist[0].Key, hist[1].Key, hist[2].Key, hist[3].Key)
		le, _, err1 := decompose.PathDecompose(q, exact)
		ls, _, err2 := decompose.PathDecompose(q, est)
		r.PlansAgree = err1 == nil && err2 == nil && fmt.Sprint(le) == fmt.Sprint(ls)
	}
	return r
}

// PrintSketchReport renders a sketch accuracy report.
func PrintSketchReport(w io.Writer, r SketchReport) {
	fmt.Fprintf(w, "== Sketch statistics vs exact (dataset %s, %d edges) ==\n", r.Dataset, r.Edges)
	fmt.Fprintf(w, "2-edge paths: exact %d, sketch %d (ratio %.4f)\n",
		r.ExactPaths, r.SketchPaths, r.OvercountRatio)
	fmt.Fprintf(w, "top-%d shape overlap: %d/%d; decomposition agreement: %v; sketch memory: %d KiB\n",
		r.TopK, r.TopKOverlap, r.TopK, r.PlansAgree, r.SketchBytes/1024)
}
