package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"streamgraph/internal/core"
	"streamgraph/internal/datagen"
	"streamgraph/internal/graph"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

// QueryClass selects the query generator for a runtime sweep.
type QueryClass string

const (
	// ClassPath generates simple path queries; Size is the path length.
	ClassPath QueryClass = "path"
	// ClassBinaryTree generates binary tree queries (netflow); Size is
	// the number of vertices.
	ClassBinaryTree QueryClass = "btree"
	// ClassSchemaTree generates schema-conforming n-ary trees
	// (LSBench); Size is the number of edges.
	ClassSchemaTree QueryClass = "stree"
)

// DefaultStrategies are the five strategies plotted in Figure 9.
func DefaultStrategies() []core.Strategy {
	return []core.Strategy{
		core.StrategyPath, core.StrategySingle,
		core.StrategyPathLazy, core.StrategySingleLazy,
		core.StrategyVF2,
	}
}

// SweepConfig parameterizes one Figure 9 panel.
type SweepConfig struct {
	Dataset         Dataset
	Class           QueryClass
	Sizes           []int
	QueriesPerGroup int
	// TrainFraction of the stream feeds the statistics collector before
	// query processing (default 0.2).
	TrainFraction float64
	// Window tW in stream time units (default: a tenth of the stream's
	// timestamp range).
	Window     int64
	Strategies []core.Strategy
	Seed       int64
	// MaxMatchesPerSearch guards against combinatorially exploding
	// unlabeled queries (default 2000 per anchored search).
	MaxMatchesPerSearch int
	// MaxEdges truncates the stream processed by every strategy
	// (0 = full stream). Unlabeled queries over hub-heavy graphs make
	// the non-lazy strategies intrinsically expensive — the paper's own
	// Single/Path runs take 10^3-10^4 seconds — so sweeps bound the
	// processed stream and compare strategies on the same prefix.
	MaxEdges int
	// MaxEdgesVF2 truncates the stream further for the VF2 baseline
	// only (it is orders of magnitude slower still); 0 uses MaxEdges.
	// The reported runtime is scaled back to the sweep's stream length.
	MaxEdgesVF2 int
	// MaxExpectedSelectivity drops pool queries above this Ŝ before
	// sampling. Zero selects the pool's median Ŝ, keeping the more
	// selective half — matching the paper's observed query mix (its
	// Figure 10 samples are overwhelmingly selective; see DESIGN.md
	// deviation 3) while adapting to query size and dataset.
	MaxExpectedSelectivity float64
}

func (c *SweepConfig) defaults() {
	if c.TrainFraction <= 0 {
		c.TrainFraction = 0.2
	}
	if c.QueriesPerGroup <= 0 {
		c.QueriesPerGroup = 3
	}
	if c.Window <= 0 {
		// The paper's processing window (8M triples of a 23M stream) is
		// a large fraction of the stream; a wide window is what makes
		// tracking-everything strategies pay for their stored partials.
		span := c.Dataset.Edges[len(c.Dataset.Edges)-1].TS - c.Dataset.Edges[0].TS
		c.Window = span/8 + 1
	}
	if c.Strategies == nil {
		c.Strategies = DefaultStrategies()
	}
	if c.MaxMatchesPerSearch <= 0 {
		c.MaxMatchesPerSearch = 500
	}
	if c.MaxEdges <= 0 || c.MaxEdges > len(c.Dataset.Edges) {
		c.MaxEdges = len(c.Dataset.Edges)
	}
}

// RunResult is one (size, strategy) cell of a Figure 9 panel: averages
// over the query group.
type RunResult struct {
	Dataset     string
	Class       QueryClass
	Size        int
	Strategy    core.Strategy
	Queries     int
	AvgSeconds  float64
	Matches     int64
	PeakStored  int64
	IsoSteps    int64
	EdgesPerSec float64
}

// RunSweep executes one Figure 9 panel: for each query size, generate
// (and selectivity-filter) a query group, then process the stream once
// per query per strategy, timing each run.
func RunSweep(cfg SweepConfig) []RunResult {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	stats := CollectPrefix(cfg.Dataset, cfg.TrainFraction)

	var results []RunResult
	for _, size := range cfg.Sizes {
		queries := generateGroup(rng, cfg, size, stats)
		ceiling := cfg.MaxExpectedSelectivity
		if ceiling <= 0 {
			ceiling = datagen.MedianExpectedSelectivity(queries, stats)
		}
		queries = datagen.FilterByMaxExpectedSelectivity(queries, stats, ceiling)
		if len(queries) == 0 {
			continue
		}
		queries = datagen.SampleByExpectedSelectivity(queries, stats, cfg.QueriesPerGroup)
		for _, strat := range cfg.Strategies {
			res := RunResult{
				Dataset: cfg.Dataset.Name, Class: cfg.Class,
				Size: size, Strategy: strat, Queries: len(queries),
			}
			for _, q := range queries {
				one := runOne(q, cfg, strat, stats)
				res.AvgSeconds += one.AvgSeconds
				res.Matches += one.Matches
				res.IsoSteps += one.IsoSteps
				if one.PeakStored > res.PeakStored {
					res.PeakStored = one.PeakStored
				}
			}
			res.AvgSeconds /= float64(len(queries))
			if res.AvgSeconds > 0 {
				res.EdgesPerSec = float64(cfg.MaxEdges) / res.AvgSeconds
			}
			results = append(results, res)
		}
	}
	return results
}

func generateGroup(rng *rand.Rand, cfg SweepConfig, size int, stats *selectivity.Collector) []*query.Graph {
	pool := cfg.QueriesPerGroup * 6
	switch cfg.Class {
	case ClassPath:
		if cfg.Dataset.Schema != nil {
			// Schema-constrained datasets (LSBench) need schema-valid
			// paths; random type sequences almost never occur.
			return datagen.GenerateSchemaPathQueries(rng, cfg.Dataset.Schema, size, pool, stats)
		}
		return datagen.GeneratePathQueries(rng, cfg.Dataset.Types, size, pool, stats)
	case ClassBinaryTree:
		return datagen.GenerateBinaryTreeQueries(rng, cfg.Dataset.Types, size, pool, stats)
	case ClassSchemaTree:
		return datagen.GenerateSchemaTreeQueries(rng, cfg.Dataset.Schema, size, pool, stats)
	default:
		return nil
	}
}

func runOne(q *query.Graph, cfg SweepConfig, strat core.Strategy, stats *selectivity.Collector) RunResult {
	edges := cfg.Dataset.Edges[:cfg.MaxEdges]
	scale := 1.0
	if strat == core.StrategyVF2 && cfg.MaxEdgesVF2 > 0 && cfg.MaxEdgesVF2 < len(edges) {
		scale = float64(len(edges)) / float64(cfg.MaxEdgesVF2)
		edges = edges[:cfg.MaxEdgesVF2]
	}
	eng, err := core.New(q, core.Config{
		Strategy:            strat,
		Window:              cfg.Window,
		Stats:               stats,
		MaxMatchesPerSearch: cfg.MaxMatchesPerSearch,
		MaxWorkPerEdge:      int64(cfg.MaxMatchesPerSearch) * 20,
		MaxStepsPerSearch:   int64(cfg.MaxMatchesPerSearch) * 100,
	})
	if err != nil {
		return RunResult{}
	}
	var matches int64
	start := time.Now()
	for _, se := range edges {
		matches += int64(len(eng.ProcessEdge(se)))
	}
	elapsed := time.Since(start).Seconds() * scale
	st := eng.Stats()
	return RunResult{
		AvgSeconds: elapsed,
		Matches:    matches,
		PeakStored: st.Tree.PeakStored,
		IsoSteps:   st.IsoSteps,
	}
}

// PrintSweep renders a Figure 9 panel as the paper's series: one row
// per (size, strategy) with the average runtime.
func PrintSweep(w io.Writer, title string, rows []RunResult) {
	fmt.Fprintf(w, "== %s ==\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "size\tstrategy\tqueries\tavg_seconds\tmatches\tpeak_stored\tiso_steps")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%v\t%d\t%.4f\t%d\t%d\t%d\n",
			r.Size, r.Strategy, r.Queries, r.AvgSeconds, r.Matches, r.PeakStored, r.IsoSteps)
	}
	tw.Flush()
}

// Speedups extracts, per size, the ratio of every strategy's runtime to
// the best lazy strategy — the 10-100x headline of the paper.
func Speedups(rows []RunResult) map[int]map[string]float64 {
	bestLazy := map[int]float64{}
	for _, r := range rows {
		if r.Strategy == core.StrategySingleLazy || r.Strategy == core.StrategyPathLazy {
			if cur, ok := bestLazy[r.Size]; !ok || r.AvgSeconds < cur {
				bestLazy[r.Size] = r.AvgSeconds
			}
		}
	}
	out := map[int]map[string]float64{}
	for _, r := range rows {
		base := bestLazy[r.Size]
		if base <= 0 {
			continue
		}
		if out[r.Size] == nil {
			out[r.Size] = map[string]float64{}
		}
		out[r.Size][r.Strategy.String()] = r.AvgSeconds / base
	}
	return out
}

// materialize builds a static graph from a stream (used by Algorithm 5
// timing and the oracle experiments).
func materialize(edges []stream.Edge) *graph.Graph {
	g := graph.New()
	for _, e := range edges {
		g.AddEdgeNamed(e.Src, e.SrcLabel, e.Dst, e.DstLabel, e.Type, e.TS)
	}
	return g
}
