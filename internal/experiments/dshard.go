package experiments

import (
	"fmt"
	"io"
	"net"
	"runtime"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"streamgraph/internal/core"
	"streamgraph/internal/dshard"
	"streamgraph/internal/metrics"
	"streamgraph/internal/shard"
	"streamgraph/internal/stream"
)

// DshardRow is one cell of the distributed-runtime comparison: one
// topology (serial engine, in-process shard runtime, all-remote or
// mixed local/remote over loopback TCP) driving the same queries over
// the same stream.
type DshardRow struct {
	// Mode is "serial", "inproc", "remote", "remote-v1", "mixed" or
	// "mixed-v1": the -v1 rows re-run the same remote topology with the
	// wire forced to the legacy v1 encoding, so the dictionary/
	// compression saving is measured on identical work.
	Mode string `json:"mode"`
	// WireProto names the negotiated encoding for remote rows: "v2"
	// (dictionary + delta timestamps + frame compression) or "v1"
	// (plain). Empty for in-process rows.
	WireProto string `json:"wire_proto,omitempty"`
	// Local and Remote count the slot kinds in the topology.
	Local  int `json:"local"`
	Remote int `json:"remote"`
	// Queries, Edges and Matches describe the workload; a Matches
	// divergence across rows would falsify the runtime (exactness
	// itself is enforced by the differential tests in internal/shard).
	Queries int   `json:"queries"`
	Edges   int   `json:"edges"`
	Matches int64 `json:"matches"`
	// Elapsed and EdgesPerSec measure ingest-to-drain throughput;
	// Speedup is relative to the serial row.
	Elapsed     time.Duration `json:"elapsed_ns"`
	EdgesPerSec float64       `json:"edges_per_sec"`
	Speedup     float64       `json:"speedup"`
	// WireMB is the total protocol traffic in MiB (0 for in-process
	// modes): edges fan out to every interested remote slot, matches
	// and acknowledgments come back. It is metered at the TCP layer,
	// post-compression — the bytes that actually crossed the wire.
	WireMB float64 `json:"wire_mb"`
	// WireMBRaw and WireMBSent split the same traffic into logical
	// (pre-dictionary-savings-aside, pre-compression) and sent
	// (post-compression) bytes as accounted by the protocol layer:
	// WireMBSent/WireMBRaw is the frame-compression ratio, and
	// comparing WireMBSent across a v2 row and its -v1 twin gives the
	// whole encoding's saving.
	WireMBRaw  float64 `json:"wire_mib_raw"`
	WireMBSent float64 `json:"wire_mib_sent"`
	// MatchLagP50NS, MatchLagP99NS and MatchLagMaxNS are end-to-end
	// match-lag quantiles in nanoseconds (see ShardRow); for remote
	// modes the lag includes the wire round-trip. Zero for serial.
	MatchLagP50NS int64 `json:"match_lag_p50_ns"`
	MatchLagP99NS int64 `json:"match_lag_p99_ns"`
	MatchLagMaxNS int64 `json:"match_lag_max_ns"`
}

// DshardConfig parameterizes the distributed-runtime experiment.
type DshardConfig struct {
	// Dataset supplies the stream.
	Dataset Dataset
	// NumQueries standing queries rotate through the dataset's edge
	// types (default 6).
	NumQueries int
	// Slots is the total shard-slot count per sharded topology
	// (default 2).
	Slots int
	// Batch is the ingest chunk size for every mode (default 512).
	Batch int
	// Window is tW (default 2000).
	Window int64
	// MaxEdges bounds the stream length (0 = whole dataset).
	MaxEdges int
}

func (c *DshardConfig) defaults() {
	if c.NumQueries <= 0 {
		c.NumQueries = 6
	}
	if c.Slots <= 0 {
		c.Slots = 2
	}
	if c.Batch <= 0 {
		c.Batch = 512
	}
	if c.Window <= 0 {
		c.Window = 2000
	}
}

// countingConn tallies bytes through a net.Conn (both directions are
// counted by wrapping the accept side only).
type countingConn struct {
	net.Conn
	n *atomic.Int64
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.n.Add(int64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// countingListener wraps Accept to meter every connection.
type countingListener struct {
	net.Listener
	n *atomic.Int64
}

func (l countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return countingConn{Conn: c, n: l.n}, nil
}

// DshardThroughput measures multi-query throughput across process
// boundaries: the serial MultiEngine, the in-process shard runtime,
// an all-remote topology (every slot a loopback-TCP dshard worker) and
// a mixed topology (half local, half remote). Every mode runs the same
// queries over the same stream in the same batch sizes; match counts
// are reported so a divergence is visible.
func DshardThroughput(cfg DshardConfig) ([]DshardRow, error) {
	cfg.defaults()
	edges := cfg.Dataset.Edges
	if cfg.MaxEdges > 0 && cfg.MaxEdges < len(edges) {
		edges = edges[:cfg.MaxEdges]
	}
	queries := shardQueries(cfg.Dataset.Types, cfg.NumQueries)
	names := shardQueryNames(queries)
	qcfg := func() core.Config {
		return core.Config{Strategy: core.StrategySingleLazy, MaxMatchesPerSearch: 20000}
	}
	chunks := func(process func([]stream.Edge)) {
		for lo := 0; lo < len(edges); lo += cfg.Batch {
			hi := lo + cfg.Batch
			if hi > len(edges) {
				hi = len(edges)
			}
			process(edges[lo:hi])
		}
	}

	var rows []DshardRow
	finish := func(mode, proto string, local, remote int, matches int64, elapsed time.Duration, wire, raw, sent int64, lag *metrics.Histogram) {
		row := DshardRow{
			Mode: mode, WireProto: proto, Local: local, Remote: remote,
			Queries: cfg.NumQueries, Edges: len(edges), Matches: matches,
			Elapsed:     elapsed,
			EdgesPerSec: float64(len(edges)) / elapsed.Seconds(),
			WireMB:      float64(wire) / (1 << 20),
			WireMBRaw:   float64(raw) / (1 << 20),
			WireMBSent:  float64(sent) / (1 << 20),
		}
		if lag != nil && lag.Count() > 0 {
			row.MatchLagP50NS = lag.Quantile(0.5)
			row.MatchLagP99NS = lag.Quantile(0.99)
			row.MatchLagMaxNS = lag.Max()
		}
		if len(rows) > 0 {
			row.Speedup = row.EdgesPerSec / rows[0].EdgesPerSec
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
	}

	// Serial baseline.
	{
		m := core.NewMulti(core.MultiConfig{Window: cfg.Window})
		for _, name := range names {
			if err := m.Register(name, queries[name], qcfg()); err != nil {
				return nil, fmt.Errorf("register %s: %w", name, err)
			}
		}
		var matches int64
		start := time.Now()
		chunks(func(chunk []stream.Edge) { matches += int64(len(m.ProcessBatch(chunk))) })
		finish("serial", "", 1, 0, matches, time.Since(start), 0, 0, 0, nil)
	}

	// sumSeries folds the router registry's dshard wire counters, both
	// directions, after a run has drained.
	sumSeries := func(r *shard.Router, names ...string) int64 {
		var total int64
		for _, s := range r.Metrics().Snapshot() {
			for _, n := range names {
				if s.Name == n {
					total += s.Value
				}
			}
		}
		return total
	}

	runSharded := func(mode string, local int, remotes []string, wireMode shard.WireMode, wire *atomic.Int64) error {
		r := shard.New(shard.Config{Shards: local, Remotes: remotes, Window: cfg.Window, Wire: wireMode})
		counted := make(chan int64, 1)
		go func() { counted <- r.Drain(nil) }()
		for _, name := range names {
			if err := r.Register(name, queries[name], qcfg()); err != nil {
				// Drain down the runtime before reporting: the caller
				// must not inherit live shard (or remote-redial)
				// goroutines from a failed run.
				r.Close()
				<-counted
				return fmt.Errorf("register %s: %w", name, err)
			}
		}
		start := time.Now()
		chunks(func(chunk []stream.Edge) { r.IngestBatch(chunk) })
		r.Close()
		elapsed := time.Since(start)
		var wired, raw, sent int64
		proto := ""
		if wire != nil {
			wired = wire.Swap(0)
			raw = sumSeries(r, "sg_dshard_raw_bytes_in_total", "sg_dshard_raw_bytes_out_total")
			sent = sumSeries(r, "sg_dshard_bytes_in_total", "sg_dshard_bytes_out_total")
			proto = "v2"
			if wireMode == shard.WireLegacy {
				proto = "v1"
			}
		}
		lag := r.MatchLag()
		finish(mode, proto, local, len(remotes), <-counted, elapsed, wired, raw, sent, &lag)
		return nil
	}

	// In-process shard runtime at the same slot count.
	if err := runSharded("inproc", cfg.Slots, nil, shard.WireAuto, nil); err != nil {
		return nil, err
	}

	// One loopback worker process-equivalent hosts every remote slot
	// (each connection gets its own engine, as separate processes
	// would).
	var wire atomic.Int64
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := dshard.NewServer()
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		srv.Serve(countingListener{Listener: ln, n: &wire})
	}()
	defer func() {
		srv.Close()
		<-serveDone
	}()
	addr := ln.Addr().String()

	// Each remote topology runs twice — once under the negotiated v2
	// encoding, once forced to legacy v1 — so the rows carry the wire
	// saving on identical work alongside the match-count differential.
	allRemote := make([]string, cfg.Slots)
	for i := range allRemote {
		allRemote[i] = addr
	}
	if err := runSharded("remote", 0, allRemote, shard.WireAuto, &wire); err != nil {
		return nil, err
	}
	if err := runSharded("remote-v1", 0, allRemote, shard.WireLegacy, &wire); err != nil {
		return nil, err
	}

	mixedRemote := allRemote[:(cfg.Slots+1)/2]
	if err := runSharded("mixed", cfg.Slots-len(mixedRemote), mixedRemote, shard.WireAuto, &wire); err != nil {
		return nil, err
	}
	if err := runSharded("mixed-v1", cfg.Slots-len(mixedRemote), mixedRemote, shard.WireLegacy, &wire); err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintDshard renders the distributed-runtime comparison as a table.
func PrintDshard(w io.Writer, dataset string, rows []DshardRow) {
	fmt.Fprintf(w, "== Distributed shard runtime: %s (loopback TCP, GOMAXPROCS=%d) ==\n",
		dataset, runtime.GOMAXPROCS(0))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\twire\tlocal\tremote\tqueries\tedges/s\tspeedup\tmatches\traw MiB\tsent MiB\tlag p50\tlag p99\telapsed")
	for _, r := range rows {
		proto := r.WireProto
		if proto == "" {
			proto = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.0f\t%.2fx\t%d\t%.2f\t%.2f\t%s\t%s\t%v\n",
			r.Mode, proto, r.Local, r.Remote, r.Queries, r.EdgesPerSec, r.Speedup,
			r.Matches, r.WireMBRaw, r.WireMBSent, lagCell(r.MatchLagP50NS), lagCell(r.MatchLagP99NS),
			r.Elapsed.Round(time.Millisecond))
	}
	tw.Flush()
}
