package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"text/tabwriter"
	"time"

	"streamgraph/internal/core"
	"streamgraph/internal/datagen"
	"streamgraph/internal/decompose"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
)

// XiSample is the relative selectivity of one query on one dataset.
type XiSample struct {
	Dataset string
	Query   *query.Graph
	Xi      float64
	Log10Xi float64
}

// Figure10 computes the relative-selectivity distribution for 4-edge
// queries across the datasets: star (k-partite) queries for New York
// Times, path queries for netflow and LSBench, as in the paper.
func Figure10(datasets []Dataset, queriesPerDataset int, seed int64) []XiSample {
	rng := rand.New(rand.NewSource(seed))
	var out []XiSample
	for _, ds := range datasets {
		stats := Collect(ds)
		var queries []*query.Graph
		switch {
		case ds.Name == "NYTimes":
			queries = starQueries(rng, ds.Types, 4, queriesPerDataset, stats)
		case ds.Schema != nil:
			queries = datagen.GenerateSchemaPathQueries(rng, ds.Schema, 4, queriesPerDataset*4, stats)
			queries = datagen.SampleByExpectedSelectivity(queries, stats, queriesPerDataset)
		default:
			queries = datagen.GeneratePathQueries(rng, ds.Types, 4, queriesPerDataset*4, stats)
			queries = datagen.SampleByExpectedSelectivity(queries, stats, queriesPerDataset)
		}
		for _, q := range queries {
			xi, ok := queryXi(q, stats)
			if !ok {
				continue
			}
			out = append(out, XiSample{Dataset: ds.Name, Query: q, Xi: xi, Log10Xi: math.Log10(xi)})
		}
	}
	return out
}

// queryXi computes ξ(T_path, T_single) for a query.
func queryXi(q *query.Graph, stats *selectivity.Collector) (float64, bool) {
	single, err := decompose.SingleDecompose(q, stats)
	if err != nil {
		return 0, false
	}
	path, fellBack, err := decompose.PathDecompose(q, stats)
	if err != nil || fellBack {
		return 0, false
	}
	xi, ok, err := stats.RelativeSelectivity(q, path, single)
	if err != nil || !ok || xi <= 0 {
		return 0, false
	}
	return xi, true
}

// starQueries generates k-partite (star) queries: one hub with nEdges
// outgoing typed edges — the natural 4-edge query class for the news
// dataset (an article mentioning four entities).
func starQueries(rng *rand.Rand, types []string, nEdges, count int, stats *selectivity.Collector) []*query.Graph {
	var out []*query.Graph
	for attempts := 0; len(out) < count && attempts < count*100; attempts++ {
		q := &query.Graph{}
		hub := q.AddVertex("hub", query.Wildcard)
		for i := 0; i < nEdges; i++ {
			leaf := q.AddVertex(fmt.Sprintf("e%d", i), query.Wildcard)
			q.AddEdge(hub, leaf, types[rng.Intn(len(types))])
		}
		if !datagen.AllQueryPathsSeen(q, stats) {
			continue
		}
		out = append(out, q)
	}
	return out
}

// Histogram buckets the log10(ξ) samples for one dataset.
type XiHistogram struct {
	Dataset string
	// Buckets maps floor(log10 ξ) to sample count.
	Buckets map[int]int
	Min     float64
	Max     float64
}

// HistogramXi buckets the Figure 10 samples per dataset.
func HistogramXi(samples []XiSample) []XiHistogram {
	byDS := map[string]*XiHistogram{}
	var order []string
	for _, s := range samples {
		h := byDS[s.Dataset]
		if h == nil {
			h = &XiHistogram{Dataset: s.Dataset, Buckets: map[int]int{}, Min: math.Inf(1), Max: math.Inf(-1)}
			byDS[s.Dataset] = h
			order = append(order, s.Dataset)
		}
		h.Buckets[int(math.Floor(s.Log10Xi))]++
		if s.Log10Xi < h.Min {
			h.Min = s.Log10Xi
		}
		if s.Log10Xi > h.Max {
			h.Max = s.Log10Xi
		}
	}
	var out []XiHistogram
	for _, name := range order {
		out = append(out, *byDS[name])
	}
	return out
}

// PrintFigure10 renders the per-dataset log10(ξ) histograms.
func PrintFigure10(w io.Writer, hists []XiHistogram) {
	fmt.Fprintln(w, "== Figure 10: relative selectivity distribution (4-edge queries) ==")
	for _, h := range hists {
		fmt.Fprintf(w, "-- %s (log10 ξ in [%.2f, %.2f]) --\n", h.Dataset, h.Min, h.Max)
		var keys []int
		for k := range h.Buckets {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, k := range keys {
			bar := ""
			for i := 0; i < h.Buckets[k]; i++ {
				bar += "#"
			}
			fmt.Fprintf(tw, "10^%d..10^%d\t%d\t%s\n", k, k+1, h.Buckets[k], bar)
		}
		tw.Flush()
	}
}

// --- Section 6.5 strategy rule accuracy ----------------------------------

// RuleResult records, for one query, what the ξ rule chose and what
// actually measured fastest between SingleLazy and PathLazy.
type RuleResult struct {
	Dataset       string
	Xi            float64
	Chosen        core.Strategy
	SingleLazySec float64
	PathLazySec   float64
	Best          core.Strategy
	Agrees        bool
}

// RuleExperiment measures the rule's agreement with the measured
// winner on a sample of queries from the dataset.
func RuleExperiment(ds Dataset, queryLen, count int, seed int64) []RuleResult {
	rng := rand.New(rand.NewSource(seed))
	stats := CollectPrefix(ds, 0.2)
	queries := datagen.GeneratePathQueries(rng, ds.Types, queryLen, count*4, stats)
	queries = datagen.SampleByExpectedSelectivity(queries, stats, count)
	span := ds.Edges[len(ds.Edges)-1].TS - ds.Edges[0].TS
	window := span/10 + 1

	var out []RuleResult
	for _, q := range queries {
		xi, ok := queryXi(q, stats)
		if !ok {
			continue
		}
		chosen := core.StrategySingleLazy
		if selectivity.PreferPathDecomposition(xi) {
			chosen = core.StrategyPathLazy
		}
		sl := timeStrategy(q, ds, core.StrategySingleLazy, window, stats)
		pl := timeStrategy(q, ds, core.StrategyPathLazy, window, stats)
		best := core.StrategySingleLazy
		if pl < sl {
			best = core.StrategyPathLazy
		}
		out = append(out, RuleResult{
			Dataset: ds.Name, Xi: xi, Chosen: chosen,
			SingleLazySec: sl, PathLazySec: pl,
			Best: best, Agrees: chosen == best,
		})
	}
	return out
}

func timeStrategy(q *query.Graph, ds Dataset, s core.Strategy, window int64, stats *selectivity.Collector) float64 {
	eng, err := core.New(q, core.Config{Strategy: s, Window: window, Stats: stats, MaxMatchesPerSearch: 20000})
	if err != nil {
		return math.Inf(1)
	}
	start := time.Now()
	for _, se := range ds.Edges {
		eng.ProcessEdge(se)
	}
	return time.Since(start).Seconds()
}

// PrintRule renders the rule-accuracy experiment.
func PrintRule(w io.Writer, rows []RuleResult) {
	fmt.Fprintln(w, "== Section 6.5: strategy selection rule (ξ < 1e-3 ⇒ PathLazy) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\txi\tchosen\tsingleLazy_s\tpathLazy_s\tbest\tagrees")
	agree := 0
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3g\t%v\t%.4f\t%.4f\t%v\t%v\n",
			r.Dataset, r.Xi, r.Chosen, r.SingleLazySec, r.PathLazySec, r.Best, r.Agrees)
		if r.Agrees {
			agree++
		}
	}
	tw.Flush()
	if len(rows) > 0 {
		fmt.Fprintf(w, "agreement: %d/%d\n", agree, len(rows))
	}
}

// --- Theorem 2 leaf-order ablation ---------------------------------------

// AblationResult compares peak partial-match storage across leaf
// orderings of the same decomposition.
type AblationResult struct {
	Order      string
	PeakStored int64
	Seconds    float64
	Matches    int64
}

// LeafOrderAblation runs the Single strategy on the same query with
// three leaf orders: ascending selectivity (the paper's choice,
// Theorem 2), descending, and the unsorted query order. Ascending
// order should minimize peak stored matches.
func LeafOrderAblation(ds Dataset, q *query.Graph, seed int64) ([]AblationResult, error) {
	stats := CollectPrefix(ds, 0.2)
	asc, err := decompose.SingleDecompose(q, stats)
	if err != nil {
		return nil, err
	}
	desc := make([][]int, len(asc))
	for i := range asc {
		desc[i] = asc[len(asc)-1-i]
	}
	natural := make([][]int, len(q.Edges))
	for i := range q.Edges {
		natural[i] = []int{i}
	}
	span := ds.Edges[len(ds.Edges)-1].TS - ds.Edges[0].TS
	window := span/10 + 1

	var out []AblationResult
	for _, c := range []struct {
		name   string
		leaves [][]int
	}{
		{"ascending-selectivity", asc},
		{"descending-selectivity", desc},
		{"query-order", natural},
	} {
		eng, err := core.New(q, core.Config{
			Strategy: core.StrategySingle, Window: window,
			Stats: stats, Leaves: c.leaves, MaxMatchesPerSearch: 20000,
		})
		if err != nil {
			return nil, err
		}
		var matches int64
		start := time.Now()
		for _, se := range ds.Edges {
			matches += int64(len(eng.ProcessEdge(se)))
		}
		st := eng.Stats()
		out = append(out, AblationResult{
			Order: c.name, PeakStored: st.Tree.PeakStored,
			Seconds: time.Since(start).Seconds(), Matches: matches,
		})
	}
	return out, nil
}

// PrintAblation renders the leaf-order ablation.
func PrintAblation(w io.Writer, rows []AblationResult) {
	fmt.Fprintln(w, "== Theorem 2 ablation: leaf order vs. peak stored partial matches ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "leaf_order\tpeak_stored\tseconds\tmatches")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.4f\t%d\n", r.Order, r.PeakStored, r.Seconds, r.Matches)
	}
	tw.Flush()
}
