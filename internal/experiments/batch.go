package experiments

import (
	"fmt"
	"io"
	"slices"
	"text/tabwriter"
	"time"

	"streamgraph/internal/core"
	"streamgraph/internal/query"
)

// BatchRow is one cell of the batch-ingestion throughput comparison:
// one strategy driven at one batch size over the same stream.
type BatchRow struct {
	Strategy    core.Strategy `json:"strategy"`
	BatchSize   int           `json:"batch_size"`
	Edges       int           `json:"edges"`
	Matches     int64         `json:"matches"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	EdgesPerSec float64       `json:"edges_per_sec"`
	// Speedup is EdgesPerSec relative to the batch=1 row of the same
	// strategy (1.0 for the batch=1 row itself).
	Speedup float64 `json:"speedup"`
}

// BatchConfig parameterizes the batch throughput experiment.
type BatchConfig struct {
	Dataset Dataset
	// Query run by every engine (defaults to a 3-hop wildcard path over
	// the dataset's three most common types via query.NewPath).
	Query *query.Graph
	// Sizes are the batch sizes to compare (default 1, 64, 1024).
	Sizes []int
	// Strategies to drive (default Single, SingleLazy, Path, PathLazy).
	Strategies []core.Strategy
	// Window is tW (default 2000).
	Window int64
	// TrainFraction of the stream estimates selectivities (default 0.2).
	TrainFraction float64
	// MaxEdges bounds the stream length (0 = whole dataset).
	MaxEdges int
}

func (c *BatchConfig) defaults() {
	if c.Query == nil {
		c.Query = query.NewPath(query.Wildcard, "UDP", "ICMP", "GRE")
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{1, 64, 1024}
	}
	if len(c.Strategies) == 0 {
		c.Strategies = []core.Strategy{
			core.StrategySingle, core.StrategySingleLazy,
			core.StrategyPath, core.StrategyPathLazy,
		}
	}
	if c.Window <= 0 {
		c.Window = 2000
	}
	if c.TrainFraction <= 0 {
		c.TrainFraction = 0.2
	}
}

// BatchThroughput measures ProcessBatch throughput per strategy and
// batch size on one dataset. Batch size 1 goes through ProcessEdge (the
// serial baseline); every run produces the same match count — the batch
// path is exact — so the comparison isolates ingestion mechanics.
func BatchThroughput(cfg BatchConfig) []BatchRow {
	cfg.defaults()
	edges := cfg.Dataset.Edges
	if cfg.MaxEdges > 0 && cfg.MaxEdges < len(edges) {
		edges = edges[:cfg.MaxEdges]
	}
	stats := CollectPrefix(cfg.Dataset, cfg.TrainFraction)

	var rows []BatchRow
	for _, strat := range cfg.Strategies {
		var base float64
		for _, size := range cfg.Sizes {
			eng, err := core.New(cfg.Query, core.Config{
				Strategy: strat, Window: cfg.Window, Stats: stats,
				MaxMatchesPerSearch: 20000,
			})
			if err != nil {
				continue // e.g. unseen primitive for this strategy
			}
			var matches int64
			start := time.Now()
			if size <= 1 {
				for _, se := range edges {
					matches += int64(len(eng.ProcessEdge(se)))
				}
			} else {
				for chunk := range slices.Chunk(edges, size) {
					for _, ms := range eng.ProcessBatch(chunk) {
						matches += int64(len(ms))
					}
				}
			}
			elapsed := time.Since(start)
			row := BatchRow{
				Strategy: strat, BatchSize: size, Edges: len(edges),
				Matches: matches, Elapsed: elapsed,
				EdgesPerSec: float64(len(edges)) / elapsed.Seconds(),
			}
			if size <= 1 || base == 0 {
				base = row.EdgesPerSec
			}
			row.Speedup = row.EdgesPerSec / base
			rows = append(rows, row)
		}
	}
	return rows
}

// PrintBatch renders the batch throughput comparison as a table.
func PrintBatch(w io.Writer, dataset string, rows []BatchRow) {
	fmt.Fprintf(w, "== Batch ingestion throughput: %s ==\n", dataset)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tbatch\tedges/s\tspeedup\tmatches\telapsed")
	for _, r := range rows {
		fmt.Fprintf(tw, "%v\t%d\t%.0f\t%.2fx\t%d\t%v\n",
			r.Strategy, r.BatchSize, r.EdgesPerSec, r.Speedup, r.Matches, r.Elapsed.Round(time.Millisecond))
	}
	tw.Flush()
}
