package experiments

import (
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"streamgraph/internal/core"
	"streamgraph/internal/shard"
)

// PersistRow is one cell of the durability experiment: the same
// queries and stream driven through the volatile sharded runtime, the
// durable (checkpointing) runtime, and a recovery of the durable
// run's data directory.
type PersistRow struct {
	Mode        string        `json:"mode"` // "volatile", "durable", "recover"
	Shards      int           `json:"shards"`
	Edges       int           `json:"edges"`
	Matches     int64         `json:"matches"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	EdgesPerSec float64       `json:"edges_per_sec"`
	// Overhead is the volatile row's EdgesPerSec divided by this row's
	// — the slowdown fsync-bounded checkpoint rounds cost (1.0 for the
	// volatile row itself; for the recover row it compares recovery to
	// processing the stream from scratch).
	Overhead float64 `json:"overhead"`
	// CheckpointEvery is the round cadence in edges (durable rows).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// LogSegments / LogDiskBytes are the durable edge log's footprint
	// after the run — what the checkpoint-driven trim retains.
	LogSegments  int   `json:"log_segments,omitempty"`
	LogDiskBytes int64 `json:"log_disk_bytes,omitempty"`
	// RecoveredMatches counts the matches the recovery replay
	// re-emitted (recover row; at-least-once across a restart).
	RecoveredMatches int `json:"recovered_matches,omitempty"`
}

// PersistConfig parameterizes the durability experiment.
type PersistConfig struct {
	Dataset Dataset
	// NumQueries standing queries rotate through the dataset's edge
	// types (default 4).
	NumQueries int
	// Shards is the local shard count for every mode (default 2).
	Shards int
	// Batch is the ingest chunk size (default 512).
	Batch int
	// Window is tW (default 2000).
	Window int64
	// CheckpointEvery is the durable round cadence (default 4096).
	CheckpointEvery int
	// MaxEdges bounds the stream length (0 = whole dataset).
	MaxEdges int
	// Dir is the durable data directory (default: a fresh temp dir,
	// removed afterwards).
	Dir string
}

func (c *PersistConfig) defaults() {
	if c.NumQueries <= 0 {
		c.NumQueries = 4
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Batch <= 0 {
		c.Batch = 512
	}
	if c.Window <= 0 {
		c.Window = 2000
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 4096
	}
}

// PersistThroughput measures what durability costs and buys: the
// volatile sharded runtime as the baseline, the same run with the
// edge log and checkpoint rounds enabled (overhead, retained log
// footprint), and a cold recovery of the resulting data directory
// (restart latency). Match counts must agree between the volatile and
// durable rows — exactness through the durable path is enforced by
// internal/shard's differential tests; the counts here make a
// divergence visible in CI's benchmark artifact.
func PersistThroughput(cfg PersistConfig) ([]PersistRow, error) {
	cfg.defaults()
	edges := cfg.Dataset.Edges
	if cfg.MaxEdges > 0 && cfg.MaxEdges < len(edges) {
		edges = edges[:cfg.MaxEdges]
	}
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "sgbench-persist-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	queries := shardQueries(cfg.Dataset.Types, cfg.NumQueries)
	names := shardQueryNames(queries)
	qcfg := core.Config{Strategy: core.StrategySingleLazy, MaxMatchesPerSearch: 20000}

	ingest := func(r *shard.Router) {
		for lo := 0; lo < len(edges); lo += cfg.Batch {
			hi := lo + cfg.Batch
			if hi > len(edges) {
				hi = len(edges)
			}
			r.IngestBatch(edges[lo:hi])
		}
	}

	var rows []PersistRow
	finish := func(mode string, matches int64, elapsed time.Duration) *PersistRow {
		row := PersistRow{
			Mode: mode, Shards: cfg.Shards, Edges: len(edges),
			Matches: matches, Elapsed: elapsed,
			EdgesPerSec: float64(len(edges)) / elapsed.Seconds(),
			Overhead:    1,
		}
		if len(rows) > 0 && row.EdgesPerSec > 0 {
			row.Overhead = rows[0].EdgesPerSec / row.EdgesPerSec
		}
		rows = append(rows, row)
		return &rows[len(rows)-1]
	}

	// Volatile baseline.
	{
		r := shard.New(shard.Config{Shards: cfg.Shards, Window: cfg.Window})
		for _, name := range names {
			if err := r.Register(name, queries[name], qcfg); err != nil {
				return nil, err
			}
		}
		counted := make(chan int64, 1)
		go func() { counted <- r.Drain(nil) }()
		start := time.Now()
		ingest(r)
		r.Close()
		finish("volatile", <-counted, time.Since(start))
	}

	// Durable run: same stream through the edge log and checkpoint
	// rounds.
	dcfg := shard.Config{
		Shards: cfg.Shards, Window: cfg.Window,
		DataDir: dir, CheckpointEvery: cfg.CheckpointEvery,
	}
	{
		r, _, err := shard.Open(dcfg)
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			if err := r.Register(name, queries[name], qcfg); err != nil {
				return nil, err
			}
		}
		counted := make(chan int64, 1)
		go func() { counted <- r.Drain(nil) }()
		start := time.Now()
		ingest(r)
		ls := r.LogStats()
		r.Close()
		elapsed := time.Since(start)
		if err := r.PersistErr(); err != nil {
			return nil, err
		}
		row := finish("durable", <-counted, elapsed)
		row.CheckpointEvery = cfg.CheckpointEvery
		row.LogSegments = ls.Segments
		row.LogDiskBytes = ls.DiskBytes
	}

	// Cold recovery of the data directory the durable run left behind.
	{
		start := time.Now()
		r, recovered, err := shard.Open(dcfg)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		ls := r.LogStats()
		go r.Drain(nil)
		r.Close()
		row := finish("recover", int64(len(recovered)), elapsed)
		row.CheckpointEvery = cfg.CheckpointEvery
		row.LogSegments = ls.Segments
		row.LogDiskBytes = ls.DiskBytes
		row.RecoveredMatches = len(recovered)
	}
	return rows, nil
}

// PrintPersist renders the durability experiment as a table.
func PrintPersist(w io.Writer, dataset string, rows []PersistRow) {
	fmt.Fprintf(w, "== Durable runtime: %s ==\n", dataset)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\tshards\tedges/s\toverhead\tmatches\tckpt-every\tlog-segs\tlog-bytes\telapsed")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.2fx\t%d\t%d\t%d\t%d\t%v\n",
			r.Mode, r.Shards, r.EdgesPerSec, r.Overhead, r.Matches,
			r.CheckpointEvery, r.LogSegments, r.LogDiskBytes, r.Elapsed.Round(time.Millisecond))
	}
	tw.Flush()
}
