package experiments

import (
	"bytes"
	"strings"
	"testing"

	"streamgraph/internal/core"
	"streamgraph/internal/query"
)

// tinyScale keeps the experiment tests fast.
var tinyScale = Scale{
	NetflowEdges: 4000, NetflowHosts: 800,
	LSBenchEdges: 4000, LSBenchUsers: 400,
	NYTArticles: 400,
}

func TestTable1(t *testing.T) {
	datasets := []Dataset{
		NetflowDataset(tinyScale, 1),
		LSBenchDataset(tinyScale, 2),
		NYTimesDataset(tinyScale, 3),
	}
	rows := Table1(datasets)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Vertices == 0 || r.Edges == 0 || r.Types == 0 {
			t.Errorf("empty row %+v", r)
		}
	}
	// Type counts mirror the paper's 7 / 45 / 4.
	if rows[0].Types != 7 {
		t.Errorf("netflow types = %d, want 7", rows[0].Types)
	}
	if rows[1].Types != 45 {
		t.Errorf("lsbench types = %d, want 45", rows[1].Types)
	}
	if rows[2].Types != 4 {
		t.Errorf("nytimes types = %d, want 4", rows[2].Types)
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "Netflow") {
		t.Errorf("print missing dataset name")
	}
}

func TestFigure6(t *testing.T) {
	ds := NetflowDataset(tinyScale, 4)
	cells := Figure6(ds, 8)
	if len(cells) == 0 {
		t.Fatal("no cells")
	}
	// All 8 intervals present, total count equals stream length.
	var total int64
	seen := map[int]bool{}
	for _, c := range cells {
		total += c.Count
		seen[c.Interval] = true
	}
	if int(total) != len(ds.Edges) {
		t.Fatalf("interval counts sum to %d, want %d", total, len(ds.Edges))
	}
	if len(seen) != 8 {
		t.Fatalf("intervals = %d, want 8", len(seen))
	}
	// The paper's key observation: rank order stays stable over time for
	// the non-noise types.
	stable, totalPairs := Figure6RankStability(cells, 20)
	if totalPairs == 0 || stable < totalPairs*3/4 {
		t.Errorf("rank stability %d/%d; expected mostly stable", stable, totalPairs)
	}
	var buf bytes.Buffer
	PrintFigure6(&buf, ds.Name, cells)
	if !strings.Contains(buf.String(), "TCP") {
		t.Errorf("print missing TCP")
	}
}

func TestFigure6LSBenchShift(t *testing.T) {
	ds := LSBenchDataset(tinyScale, 5)
	cells := Figure6(ds, 10)
	// First and last interval must have disjoint type sets (the
	// Figure 6c mid-stream shift).
	first, last := map[string]bool{}, map[string]bool{}
	maxI := 0
	for _, c := range cells {
		if c.Interval > maxI {
			maxI = c.Interval
		}
	}
	for _, c := range cells {
		if c.Interval == 0 {
			first[c.Type] = true
		}
		if c.Interval == maxI {
			last[c.Type] = true
		}
	}
	for tp := range first {
		if last[tp] {
			t.Fatalf("type %s present in both first and last interval", tp)
		}
	}
}

func TestFigure7Skew(t *testing.T) {
	nf := Figure7(NetflowDataset(tinyScale, 6))
	ls := Figure7(LSBenchDataset(tinyScale, 7))
	nyt := Figure7(NYTimesDataset(tinyScale, 8))
	// Unique shape counts ordered as in the paper: NYT < netflow < LSBench.
	if !(nyt.UniqueShapes < nf.UniqueShapes && nf.UniqueShapes < ls.UniqueShapes) {
		t.Errorf("unique shapes: nyt=%d nf=%d ls=%d; want nyt < nf < ls",
			nyt.UniqueShapes, nf.UniqueShapes, ls.UniqueShapes)
	}
	// Heavy skew: top shape dominates the median.
	if nf.SkewRatio < 10 {
		t.Errorf("netflow skew = %.1f, want >= 10", nf.SkewRatio)
	}
	var buf bytes.Buffer
	PrintFigure7(&buf, nf, 5)
	if !strings.Contains(buf.String(), "rank") {
		t.Errorf("print missing header")
	}
}

func TestRunSweepStrategiesAgreeOnMatches(t *testing.T) {
	ds := NetflowDataset(tinyScale, 9)
	cfg := SweepConfig{
		Dataset:                ds,
		Class:                  ClassPath,
		Sizes:                  []int{2},
		QueriesPerGroup:        2,
		Seed:                   10,
		MaxMatchesPerSearch:    1 << 30, // no caps: strategies must agree exactly
		MaxExpectedSelectivity: 1,       // admit frequent queries; size-2 Ŝ is large
	}
	rows := RunSweep(cfg)
	if len(rows) == 0 {
		t.Fatal("no results")
	}
	// All strategies on the same size must report identical match totals.
	bySize := map[int]map[int64]bool{}
	for _, r := range rows {
		if bySize[r.Size] == nil {
			bySize[r.Size] = map[int64]bool{}
		}
		bySize[r.Size][r.Matches] = true
		if r.AvgSeconds <= 0 {
			t.Errorf("%v: zero runtime", r.Strategy)
		}
	}
	for size, set := range bySize {
		if len(set) != 1 {
			t.Errorf("size %d: strategies disagree on match totals: %v", size, set)
		}
	}
	var buf bytes.Buffer
	PrintSweep(&buf, "test", rows)
	if !strings.Contains(buf.String(), "strategy") {
		t.Errorf("print missing header")
	}
	if sp := Speedups(rows); len(sp) == 0 {
		t.Errorf("no speedups computed")
	}
}

func TestFigure10(t *testing.T) {
	datasets := []Dataset{
		NYTimesDataset(tinyScale, 11),
		NetflowDataset(tinyScale, 12),
		LSBenchDataset(tinyScale, 13),
	}
	samples := Figure10(datasets, 6, 14)
	if len(samples) == 0 {
		t.Fatal("no xi samples")
	}
	seen := map[string]bool{}
	for _, s := range samples {
		if s.Xi <= 0 {
			t.Errorf("nonpositive xi %v", s.Xi)
		}
		seen[s.Dataset] = true
	}
	if len(seen) < 2 {
		t.Errorf("xi samples cover only %v", seen)
	}
	hists := HistogramXi(samples)
	if len(hists) != len(seen) {
		t.Errorf("histograms = %d, datasets = %d", len(hists), len(seen))
	}
	var buf bytes.Buffer
	PrintFigure10(&buf, hists)
	if !strings.Contains(buf.String(), "Figure 10") {
		t.Errorf("print missing title")
	}
}

func TestRuleExperiment(t *testing.T) {
	ds := NetflowDataset(tinyScale, 15)
	rows := RuleExperiment(ds, 3, 2, 16)
	if len(rows) == 0 {
		t.Skip("no rule samples generated at tiny scale")
	}
	for _, r := range rows {
		if r.Chosen != core.StrategySingleLazy && r.Chosen != core.StrategyPathLazy {
			t.Errorf("bad chosen strategy %v", r.Chosen)
		}
	}
	var buf bytes.Buffer
	PrintRule(&buf, rows)
	if !strings.Contains(buf.String(), "agreement") {
		t.Errorf("print missing agreement line")
	}
}

func TestLeafOrderAblation(t *testing.T) {
	ds := NetflowDataset(tinyScale, 17)
	q := query.NewPath(query.Wildcard, "GRE", "TCP", "TCP")
	rows, err := LeafOrderAblation(ds, q, 18)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byName := map[string]AblationResult{}
	for _, r := range rows {
		byName[r.Order] = r
	}
	asc := byName["ascending-selectivity"]
	desc := byName["descending-selectivity"]
	// Theorem 2: ascending selectivity order needs no more storage than
	// descending.
	if asc.PeakStored > desc.PeakStored {
		t.Errorf("ascending order stored %d > descending %d", asc.PeakStored, desc.PeakStored)
	}
	// All orders must find the same matches.
	if asc.Matches != desc.Matches || asc.Matches != byName["query-order"].Matches {
		t.Errorf("orders disagree on matches: %+v", rows)
	}
	var buf bytes.Buffer
	PrintAblation(&buf, rows)
	if !strings.Contains(buf.String(), "leaf_order") {
		t.Errorf("print missing header")
	}
}

func TestTimeAlgorithm5(t *testing.T) {
	ds := NetflowDataset(tinyScale, 19)
	r := TimeAlgorithm5(ds)
	if r.Edges != len(ds.Edges) || r.EdgesPerSec <= 0 || r.UniqueShapes == 0 {
		t.Errorf("bad timing result %+v", r)
	}
}

func TestCollectPrefix(t *testing.T) {
	ds := NetflowDataset(tinyScale, 20)
	c := CollectPrefix(ds, 0.25)
	if c.EdgeTotal() != int64(len(ds.Edges)/4) {
		t.Errorf("prefix total = %d, want %d", c.EdgeTotal(), len(ds.Edges)/4)
	}
	full := CollectPrefix(ds, 0)
	if full.EdgeTotal() != int64(len(ds.Edges)) {
		t.Errorf("zero fraction should use full stream")
	}
}
