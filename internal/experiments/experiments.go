// Package experiments regenerates every table and figure of the paper's
// evaluation (Choudhury et al., EDBT 2015, Section 6) on the synthetic
// datasets: Table 1 (dataset summary), Figure 6 (edge-type distribution
// over time), Figure 7 (2-edge path distribution), Figure 9a-d (query
// runtime sweeps per strategy), Figure 10 (relative selectivity
// distribution), the Section 6.5 strategy-selection rule accuracy, the
// Section 5.1 Algorithm 5 timing claim, and the Theorem 2 leaf-order
// ablation.
package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"text/tabwriter"
	"time"

	"streamgraph/internal/datagen"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

// Dataset bundles a generated edge stream with the metadata the query
// generators need.
type Dataset struct {
	Name   string
	Edges  []stream.Edge
	Types  []string         // edge types for unlabeled query generation
	Schema []datagen.Triple // non-nil for schema-driven query generation
}

// Scale sets the generated dataset sizes. The ratios between the three
// datasets mirror Table 1 (netflow and LSBench are orders of magnitude
// larger than New York Times).
type Scale struct {
	NetflowEdges int
	NetflowHosts int
	LSBenchEdges int
	LSBenchUsers int
	NYTArticles  int
}

// ScaleSmall keeps the full experiment suite in the tens of seconds; it
// is the default for `go test -bench` runs.
var ScaleSmall = Scale{
	NetflowEdges: 30000, NetflowHosts: 4000,
	LSBenchEdges: 30000, LSBenchUsers: 2000,
	NYTArticles: 2500,
}

// ScaleMedium is the default for the sgbench command.
var ScaleMedium = Scale{
	NetflowEdges: 200000, NetflowHosts: 20000,
	LSBenchEdges: 200000, LSBenchUsers: 10000,
	NYTArticles: 15000,
}

// ScaleLarge approaches the paper's stream lengths where laptop memory
// allows.
var ScaleLarge = Scale{
	NetflowEdges: 2000000, NetflowHosts: 100000,
	LSBenchEdges: 2000000, LSBenchUsers: 50000,
	NYTArticles: 60000,
}

// NetflowDataset generates the CAIDA substitute at the given scale.
func NetflowDataset(s Scale, seed int64) Dataset {
	return Dataset{
		Name:  "Netflow",
		Edges: datagen.Netflow(datagen.NetflowConfig{Seed: seed, Edges: s.NetflowEdges, Hosts: s.NetflowHosts}),
		Types: datagen.NetflowProtocols,
	}
}

// LSBenchDataset generates the LSBench substitute at the given scale.
func LSBenchDataset(s Scale, seed int64) Dataset {
	return Dataset{
		Name:   "LSBench",
		Edges:  datagen.LSBench(datagen.LSBenchConfig{Seed: seed, Edges: s.LSBenchEdges, Users: s.LSBenchUsers}),
		Types:  lsbenchTypes(),
		Schema: datagen.LSBenchSchema(),
	}
}

// NYTimesDataset generates the New York Times substitute.
func NYTimesDataset(s Scale, seed int64) Dataset {
	return Dataset{
		Name:  "NYTimes",
		Edges: datagen.NYTimes(datagen.NYTimesConfig{Seed: seed, Articles: s.NYTArticles}),
		Types: datagen.NYTimesTypes,
	}
}

func lsbenchTypes() []string {
	var out []string
	for _, tr := range datagen.LSBenchSchema() {
		out = append(out, tr.Type)
	}
	return out
}

// Collect folds a dataset's edges into a fresh statistics collector.
func Collect(ds Dataset) *selectivity.Collector {
	c := selectivity.NewCollector()
	c.AddAll(ds.Edges)
	return c
}

// CollectPrefix folds only the leading fraction of the stream — the
// paper's "initial set of edges" used to estimate selectivities before
// query processing begins (Section 5.1).
func CollectPrefix(ds Dataset, fraction float64) *selectivity.Collector {
	c := selectivity.NewCollector()
	n := int(float64(len(ds.Edges)) * fraction)
	if n < 1 {
		n = len(ds.Edges)
	}
	c.AddAll(ds.Edges[:n])
	return c
}

// --- Table 1 ------------------------------------------------------------

// Table1Row summarizes one dataset.
type Table1Row struct {
	Dataset  string
	Kind     string
	Vertices int
	Edges    int
	Types    int
}

// Table1 reproduces the dataset summary table.
func Table1(datasets []Dataset) []Table1Row {
	kind := map[string]string{
		"Netflow": "Network traffic", "LSBench": "RDF Stream", "NYTimes": "Online News",
	}
	var rows []Table1Row
	for _, ds := range datasets {
		verts := make(map[string]struct{})
		types := make(map[string]struct{})
		for _, e := range ds.Edges {
			verts[e.Src] = struct{}{}
			verts[e.Dst] = struct{}{}
			types[e.Type] = struct{}{}
		}
		rows = append(rows, Table1Row{
			Dataset: ds.Name, Kind: kind[ds.Name],
			Vertices: len(verts), Edges: len(ds.Edges), Types: len(types),
		})
	}
	return rows
}

// PrintTable1 renders Table 1 rows.
func PrintTable1(w io.Writer, rows []Table1Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tType\tVertices\tEdges\tEdgeTypes")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\n", r.Dataset, r.Kind, r.Vertices, r.Edges, r.Types)
	}
	tw.Flush()
}

// --- Figure 6 -----------------------------------------------------------

// IntervalCount is one (interval, edge type) cell of Figure 6: the
// non-cumulative count of that type within the interval.
type IntervalCount struct {
	Interval int
	Type     string
	Count    int64
}

// Figure6 splits the stream into the given number of equal intervals
// and reports the per-interval edge-type histogram — the data behind
// the "edge distribution over time" plots.
func Figure6(ds Dataset, intervals int) []IntervalCount {
	if intervals <= 0 {
		intervals = 10
	}
	per := (len(ds.Edges) + intervals - 1) / intervals
	var out []IntervalCount
	for i := 0; i < intervals; i++ {
		lo := i * per
		hi := lo + per
		if lo >= len(ds.Edges) {
			break
		}
		if hi > len(ds.Edges) {
			hi = len(ds.Edges)
		}
		counts := map[string]int64{}
		for _, e := range ds.Edges[lo:hi] {
			counts[e.Type]++
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out = append(out, IntervalCount{Interval: i, Type: k, Count: counts[k]})
		}
	}
	return out
}

// Figure6RankStability reports, for each pair of consecutive intervals,
// whether the frequency rank order of the edge types stayed identical —
// the paper's key observation that "the relative order of different
// types of edges stays similar even as the graph evolves". Types with
// fewer than minCount occurrences in an interval are ignored (the noisy
// left tail the paper also excludes).
func Figure6RankStability(cells []IntervalCount, minCount int64) (stable, total int) {
	byInterval := map[int]map[string]int64{}
	maxI := 0
	for _, c := range cells {
		if byInterval[c.Interval] == nil {
			byInterval[c.Interval] = map[string]int64{}
		}
		byInterval[c.Interval][c.Type] = c.Count
		if c.Interval > maxI {
			maxI = c.Interval
		}
	}
	rank := func(m, other map[string]int64) []string {
		var keys []string
		for k, v := range m {
			// Only types above the noise floor in BOTH intervals take
			// part in the comparison; the paper observes fluctuations
			// "for the very low frequency components" and excludes them.
			if v >= minCount && other[k] >= minCount {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool {
			if m[keys[i]] != m[keys[j]] {
				return m[keys[i]] > m[keys[j]]
			}
			return keys[i] < keys[j]
		})
		return keys
	}
	for i := 1; i <= maxI; i++ {
		a := rank(byInterval[i-1], byInterval[i])
		b := rank(byInterval[i], byInterval[i-1])
		total++
		if equalSlices(a, b) {
			stable++
		}
	}
	return stable, total
}

func equalSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PrintFigure6 renders the interval histogram.
func PrintFigure6(w io.Writer, name string, cells []IntervalCount) {
	fmt.Fprintf(w, "== Figure 6: edge type distribution over time (%s) ==\n", name)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "interval\ttype\tcount")
	for _, c := range cells {
		fmt.Fprintf(tw, "%d\t%s\t%d\n", c.Interval, c.Type, c.Count)
	}
	tw.Flush()
}

// --- Figure 7 -----------------------------------------------------------

// Figure7Result is the 2-edge path distribution of one dataset.
type Figure7Result struct {
	Dataset      string
	UniqueShapes int
	Histogram    []selectivity.HistogramEntry // sorted by descending count
	SkewRatio    float64                      // top shape count / median shape count
}

// Figure7 computes the 2-edge path distribution (Algorithm 5 output)
// for a dataset.
func Figure7(ds Dataset) Figure7Result {
	c := Collect(ds)
	h := c.PathHistogram()
	res := Figure7Result{Dataset: ds.Name, UniqueShapes: c.UniquePathShapes(), Histogram: h}
	if len(h) > 0 {
		med := h[len(h)/2].Count
		if med > 0 {
			res.SkewRatio = float64(h[0].Count) / float64(med)
		} else {
			res.SkewRatio = math.Inf(1)
		}
	}
	return res
}

// PrintFigure7 renders the ranked distribution (top entries and the
// tail) in the log-scale spirit of the paper's plot.
func PrintFigure7(w io.Writer, r Figure7Result, top int) {
	fmt.Fprintf(w, "== Figure 7: 2-edge path distribution (%s): %d unique shapes, skew(top/median)=%.1f ==\n",
		r.Dataset, r.UniqueShapes, r.SkewRatio)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tshape\tcount")
	for i, e := range r.Histogram {
		if i >= top && i < len(r.Histogram)-3 {
			if i == top {
				fmt.Fprintln(tw, "...\t...\t...")
			}
			continue
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\n", i+1, e.Key, e.Count)
	}
	tw.Flush()
}

// --- Algorithm 5 timing (Section 5.1) ------------------------------------

// Alg5Timing reports the batch 2-edge path statistics throughput.
type Alg5Timing struct {
	Edges        int
	Vertices     int
	Elapsed      time.Duration
	EdgesPerSec  float64
	UniqueShapes int
}

// TimeAlgorithm5 materializes the dataset as a graph and times the
// batch Algorithm 5 run (the paper reports ~50s for 130M edges).
func TimeAlgorithm5(ds Dataset) Alg5Timing {
	g := materialize(ds.Edges)
	start := time.Now()
	paths, _ := selectivity.ComputeFromGraph(g)
	elapsed := time.Since(start)
	return Alg5Timing{
		Edges:        g.NumEdges(),
		Vertices:     g.NumVertices(),
		Elapsed:      elapsed,
		EdgesPerSec:  float64(g.NumEdges()) / elapsed.Seconds(),
		UniqueShapes: len(paths),
	}
}

// sanity helper shared by experiments.
var _ = rand.Int
