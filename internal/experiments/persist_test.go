package experiments

import "testing"

// TestPersistThroughputAgrees smoke-runs the durability experiment on
// a tiny stream: the volatile and durable rows must find identical
// match counts (exactness through the durable path is proven
// differentially in internal/shard), the durable row must leave a
// bounded log on disk, and the recovery row must reopen it.
func TestPersistThroughputAgrees(t *testing.T) {
	ds := NetflowDataset(tinyScale, 5)
	rows, err := PersistThroughput(PersistConfig{
		Dataset: ds, NumQueries: 4, Shards: 2, MaxEdges: 2000, Batch: 128,
		CheckpointEvery: 512, Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatalf("persist experiment: %v", err)
	}
	if len(rows) != 3 { // volatile, durable, recover
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	volatile, durable, recover := rows[0], rows[1], rows[2]
	if volatile.Matches == 0 {
		t.Fatal("workload produced no matches; comparison is vacuous")
	}
	if durable.Matches != volatile.Matches {
		t.Fatalf("durable run found %d matches, volatile found %d", durable.Matches, volatile.Matches)
	}
	if durable.LogSegments <= 0 || durable.LogDiskBytes <= 0 {
		t.Fatalf("durable run left no log on disk: %+v", durable)
	}
	if recover.Elapsed <= 0 {
		t.Fatalf("recovery row has no elapsed time: %+v", recover)
	}
	for i, r := range rows {
		if r.Edges != 2000 {
			t.Fatalf("row %d (%s) covers %d edges, want 2000", i, r.Mode, r.Edges)
		}
	}
}
