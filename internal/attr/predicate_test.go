package attr

import (
	"testing"
)

func rec(kv ...string) Record {
	r := Record{}
	for i := 0; i+1 < len(kv); i += 2 {
		r[kv[i]] = kv[i+1]
	}
	return r
}

func TestPredicateComparisons(t *testing.T) {
	r := rec("proto", "TCP", "dstPort", "443", "bytes", "1500", "note", "abc")
	for _, tc := range []struct {
		expr string
		want bool
	}{
		{"proto == TCP", true},
		{"proto = TCP", true}, // single '=' is accepted as '=='
		{"proto == UDP", false},
		{"proto != UDP", true},
		{"dstPort == 443", true},
		{"dstPort < 1024", true},
		{"dstPort <= 443", true},
		{"dstPort > 443", false},
		{"dstPort >= 444", false},
		{"bytes >= 1500", true},
		{"bytes > 1e3", true},  // numeric literal in scientific notation
		{"note > abb", true},   // string comparison
		{"note < 'abd'", true}, // quoted string
		{"note == \"abc\"", true},
		{"dstPort == '443'", true}, // quoted numbers still compare numerically
	} {
		p, err := ParsePredicate(tc.expr)
		if err != nil {
			t.Fatalf("%q: %v", tc.expr, err)
		}
		if got := p.Eval(r); got != tc.want {
			t.Errorf("%q = %v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestPredicateBooleanStructure(t *testing.T) {
	r := rec("proto", "TCP", "dstPort", "80")
	for _, tc := range []struct {
		expr string
		want bool
	}{
		{"proto == TCP && dstPort == 80", true},
		{"proto == TCP && dstPort == 443", false},
		{"proto == UDP || dstPort == 80", true},
		{"proto == UDP || dstPort == 443", false},
		{"!(proto == UDP)", true},
		{"!proto == TCP", false}, // ! binds to the comparison
		{"(proto == UDP || proto == TCP) && dstPort < 1024", true},
		// Precedence: && binds tighter than ||.
		{"proto == UDP || proto == TCP && dstPort == 80", true},
		{"proto == UDP && proto == TCP || dstPort == 80", true},
	} {
		p, err := ParsePredicate(tc.expr)
		if err != nil {
			t.Fatalf("%q: %v", tc.expr, err)
		}
		if got := p.Eval(r); got != tc.want {
			t.Errorf("%q = %v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestPredicateMissingFieldIsFalse(t *testing.T) {
	r := rec("proto", "TCP")
	for _, expr := range []string{"port == 80", "port != 80", "port < 80"} {
		p := MustPredicate(expr)
		if p.Eval(r) {
			t.Errorf("%q on record without 'port' must be false", expr)
		}
	}
	// ...but a negated comparison on a missing field is true.
	if !MustPredicate("!(port == 80)").Eval(r) {
		t.Error("!(port == 80) on missing field should be true")
	}
}

func TestPredicateParseErrors(t *testing.T) {
	for _, expr := range []string{
		"",
		"proto ==",
		"== TCP",
		"proto TCP",
		"proto == TCP &&",
		"proto == TCP ) ",
		"(proto == TCP",
		"proto & TCP",
		"proto | TCP",
		"proto == 'unterminated",
		"proto == TCP extra",
		"proto @ TCP",
	} {
		if _, err := ParsePredicate(expr); err == nil {
			t.Errorf("ParsePredicate(%q) succeeded, want error", expr)
		}
	}
}

func TestPredicateStringRoundTrip(t *testing.T) {
	records := []Record{
		rec("proto", "TCP", "dstPort", "443"),
		rec("proto", "UDP", "dstPort", "53"),
		rec("proto", "TCP"),
		rec(),
	}
	for _, expr := range []string{
		"proto == TCP",
		"proto == TCP && dstPort < 1024",
		"!(proto == UDP || dstPort >= 1024)",
		"proto != UDP && (dstPort == 53 || dstPort == 443)",
	} {
		p1 := MustPredicate(expr)
		p2, err := ParsePredicate(p1.String())
		if err != nil {
			t.Fatalf("re-parsing %q (from %q): %v", p1.String(), expr, err)
		}
		for _, r := range records {
			if p1.Eval(r) != p2.Eval(r) {
				t.Errorf("round-trip of %q changed semantics on %v", expr, r)
			}
		}
	}
}

func TestMustPredicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPredicate on invalid input did not panic")
		}
	}()
	MustPredicate("not a predicate ==")
}
