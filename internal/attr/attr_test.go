package attr

import (
	"strings"
	"testing"
)

func flowRecord() Record {
	return rec(
		"ts", "1700000000",
		"srcIP", "10.1.2.3",
		"dstIP", "93.184.216.34",
		"proto", "TCP",
		"srcPort", "51234",
		"dstPort", "443",
		"bytes", "8800",
	)
}

func TestMapperBasic(t *testing.T) {
	m := &Mapper{
		SrcField: "srcIP", DstField: "dstIP",
		SrcLabel: "ip", DstLabel: "ip",
		TypeFields: []string{"proto"},
		TSField:    "ts",
	}
	e, ok, err := m.Map(flowRecord())
	if err != nil || !ok {
		t.Fatalf("Map: ok=%v err=%v", ok, err)
	}
	if e.Src != "10.1.2.3" || e.Dst != "93.184.216.34" {
		t.Fatalf("endpoints wrong: %+v", e)
	}
	if e.Type != "TCP" || e.TS != 1700000000 {
		t.Fatalf("type/ts wrong: %+v", e)
	}
	if e.SrcLabel != "ip" || e.DstLabel != "ip" {
		t.Fatalf("labels wrong: %+v", e)
	}
}

func TestMapperCompositeType(t *testing.T) {
	m := &Mapper{
		SrcField: "srcIP", DstField: "dstIP",
		TypeFields: []string{"proto", "dstPort"},
	}
	e, ok, err := m.Map(flowRecord())
	if err != nil || !ok {
		t.Fatalf("Map: ok=%v err=%v", ok, err)
	}
	if e.Type != "TCP:443" {
		t.Fatalf("composite type = %q, want TCP:443", e.Type)
	}
	m.TypeSep = "/"
	e, _, _ = m.Map(flowRecord())
	if e.Type != "TCP/443" {
		t.Fatalf("custom separator type = %q, want TCP/443", e.Type)
	}
}

func TestMapperTypeFunc(t *testing.T) {
	m := &Mapper{
		SrcField: "srcIP", DstField: "dstIP",
		TypeFunc: func(r Record) (string, error) {
			if r["dstPort"] < "1024" { // string compare fine for this test
				return "wellknown", nil
			}
			return "ephemeral", nil
		},
	}
	e, ok, err := m.Map(flowRecord())
	if err != nil || !ok {
		t.Fatal(err)
	}
	if e.Type == "" {
		t.Fatal("TypeFunc result ignored")
	}
}

func TestMapperWhereFilters(t *testing.T) {
	m := &Mapper{
		SrcField: "srcIP", DstField: "dstIP",
		TypeFields: []string{"proto"},
		Where:      MustPredicate("proto == TCP && dstPort == 443"),
	}
	if _, ok, err := m.Map(flowRecord()); err != nil || !ok {
		t.Fatalf("matching record filtered: ok=%v err=%v", ok, err)
	}
	r := flowRecord()
	r["dstPort"] = "80"
	if _, ok, err := m.Map(r); err != nil || ok {
		t.Fatalf("non-matching record passed: ok=%v err=%v", ok, err)
	}
}

func TestMapperCounterTimestamps(t *testing.T) {
	m := &Mapper{
		SrcField: "srcIP", DstField: "dstIP",
		TypeFields: []string{"proto"},
	}
	r := flowRecord()
	e1, _, _ := m.Map(r)
	e2, _, _ := m.Map(r)
	if e1.TS != 1 || e2.TS != 2 {
		t.Fatalf("counter timestamps = %d, %d; want 1, 2", e1.TS, e2.TS)
	}
	// A record missing the TS field also falls back to the counter.
	m2 := &Mapper{SrcField: "srcIP", DstField: "dstIP", TypeFields: []string{"proto"}, TSField: "nots"}
	e3, _, _ := m2.Map(r)
	if e3.TS != 1 {
		t.Fatalf("missing ts field: TS = %d, want counter 1", e3.TS)
	}
}

func TestMapperErrors(t *testing.T) {
	base := func() *Mapper {
		return &Mapper{SrcField: "srcIP", DstField: "dstIP", TypeFields: []string{"proto"}, TSField: "ts"}
	}
	for _, tc := range []struct {
		name   string
		mutate func(Record, *Mapper)
		errSub string
	}{
		{"missing src", func(r Record, m *Mapper) { delete(r, "srcIP") }, "source"},
		{"missing dst", func(r Record, m *Mapper) { delete(r, "dstIP") }, "destination"},
		{"missing type field", func(r Record, m *Mapper) { delete(r, "proto") }, "type field"},
		{"bad ts", func(r Record, m *Mapper) { r["ts"] = "yesterday" }, "timestamp"},
		{"no type config", func(r Record, m *Mapper) { m.TypeFields = nil }, "TypeFields"},
	} {
		m := base()
		r := flowRecord()
		tc.mutate(r, m)
		_, _, err := m.Map(r)
		if err == nil || !strings.Contains(err.Error(), tc.errSub) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.errSub)
		}
	}
}
