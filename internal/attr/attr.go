// Package attr implements the attribute layer of the paper's Section
// 5.1: real stream records carry many attributes (a netflow has a
// protocol, ports, byte counts, durations ...), and a user-defined
// Map() function folds the attributes relevant to the workload into the
// edge type the engine matches on — "we can provide a hash function to
// map any user defined edge properties to an integer value. Thus, for
// queries with constraints on vertex and edge properties, a generic map
// function factors in both structural and semantic characteristics of
// the graph stream."
//
// The package provides Record (a raw attributed record), Mapper (a
// declarative Map() that builds stream edges from records) and a small
// predicate language for pre-filtering records (see ParsePredicate).
package attr

import (
	"fmt"
	"strconv"
	"strings"

	"streamgraph/internal/stream"
)

// Record is one raw input record: a set of named string fields.
type Record map[string]string

// Mapper is a declarative Map() function: it extracts vertex identity,
// labels, edge type and timestamp from a Record's fields. The zero
// value is not usable; populate at least SrcField and DstField.
type Mapper struct {
	// SrcField and DstField name the fields holding the endpoint vertex
	// identities. Required.
	SrcField, DstField string

	// SrcLabel and DstLabel are the vertex labels assigned to the
	// endpoints (static; vertices are typed by role, e.g. "ip").
	SrcLabel, DstLabel string

	// TypeFields names the fields whose values are joined (with
	// TypeSep, default ":") to form the edge type — the paper's Map()
	// over user-selected edge properties. At least one is required
	// unless TypeFunc is set.
	TypeFields []string

	// TypeSep separates joined type fields; empty defaults to ":".
	TypeSep string

	// TypeFunc, when non-nil, overrides TypeFields entirely: it derives
	// the edge type from the whole record (arbitrary bucketing such as
	// "port < 1024 -> wellknown").
	TypeFunc func(Record) (string, error)

	// TSField names the field holding the integer timestamp. When empty
	// or missing from a record, a per-mapper monotonic counter supplies
	// arrival order.
	TSField string

	// Where, when non-nil, drops records for which the predicate is
	// false (Map returns ok=false).
	Where *Predicate

	counter int64
}

// Map converts a record to a stream edge. ok is false when the record
// was filtered out by Where; err is non-nil for structurally unusable
// records (missing endpoint or type fields, malformed timestamp).
func (m *Mapper) Map(r Record) (e stream.Edge, ok bool, err error) {
	if m.Where != nil && !m.Where.Eval(r) {
		return stream.Edge{}, false, nil
	}
	src, okSrc := r[m.SrcField]
	if !okSrc || src == "" {
		return stream.Edge{}, false, fmt.Errorf("attr: record missing source field %q", m.SrcField)
	}
	dst, okDst := r[m.DstField]
	if !okDst || dst == "" {
		return stream.Edge{}, false, fmt.Errorf("attr: record missing destination field %q", m.DstField)
	}
	etype, err := m.edgeType(r)
	if err != nil {
		return stream.Edge{}, false, err
	}
	ts, err := m.timestamp(r)
	if err != nil {
		return stream.Edge{}, false, err
	}
	return stream.Edge{
		Src: src, SrcLabel: m.SrcLabel,
		Dst: dst, DstLabel: m.DstLabel,
		Type: etype, TS: ts,
	}, true, nil
}

func (m *Mapper) edgeType(r Record) (string, error) {
	if m.TypeFunc != nil {
		return m.TypeFunc(r)
	}
	if len(m.TypeFields) == 0 {
		return "", fmt.Errorf("attr: mapper has neither TypeFields nor TypeFunc")
	}
	sep := m.TypeSep
	if sep == "" {
		sep = ":"
	}
	parts := make([]string, 0, len(m.TypeFields))
	for _, f := range m.TypeFields {
		v, ok := r[f]
		if !ok || v == "" {
			return "", fmt.Errorf("attr: record missing type field %q", f)
		}
		parts = append(parts, v)
	}
	return strings.Join(parts, sep), nil
}

func (m *Mapper) timestamp(r Record) (int64, error) {
	if m.TSField != "" {
		if v, ok := r[m.TSField]; ok && v != "" {
			ts, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return 0, fmt.Errorf("attr: bad timestamp %q: %v", v, err)
			}
			return ts, nil
		}
	}
	m.counter++
	return m.counter, nil
}
