package attr

import (
	"fmt"
	"strconv"
	"strings"
)

// Predicate is a compiled filter expression over Records.
//
// Grammar (whitespace-insensitive):
//
//	expr   := and ('||' and)*
//	and    := unary ('&&' unary)*
//	unary  := '!' unary | '(' expr ')' | cmp
//	cmp    := field op value
//	op     := '==' | '=' | '!=' | '<' | '<=' | '>' | '>='
//	field  := identifier ([A-Za-z0-9_.]+)
//	value  := identifier | number | single- or double-quoted string
//
// Comparison is numeric when both the field's value and the literal
// parse as floats, string (byte-wise) otherwise. A comparison on a
// field absent from the record is false — including '!=' — so that
// filters never match records that lack the attribute they test.
type Predicate struct {
	root node
	src  string
}

// ParsePredicate compiles an expression.
func ParsePredicate(src string) (*Predicate, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	root, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("attr: trailing input at %q", p.peek().text)
	}
	return &Predicate{root: root, src: src}, nil
}

// MustPredicate is ParsePredicate for static expressions; it panics on
// error.
func MustPredicate(src string) *Predicate {
	p, err := ParsePredicate(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Eval evaluates the predicate against a record.
func (p *Predicate) Eval(r Record) bool { return p.root.eval(r) }

// String returns a canonical rendering of the expression.
func (p *Predicate) String() string { return p.root.render() }

// --- AST -----------------------------------------------------------------

type node interface {
	eval(Record) bool
	render() string
}

type orNode struct{ kids []node }

func (n orNode) eval(r Record) bool {
	for _, k := range n.kids {
		if k.eval(r) {
			return true
		}
	}
	return false
}

func (n orNode) render() string {
	parts := make([]string, len(n.kids))
	for i, k := range n.kids {
		parts[i] = k.render()
	}
	return "(" + strings.Join(parts, " || ") + ")"
}

type andNode struct{ kids []node }

func (n andNode) eval(r Record) bool {
	for _, k := range n.kids {
		if !k.eval(r) {
			return false
		}
	}
	return true
}

func (n andNode) render() string {
	parts := make([]string, len(n.kids))
	for i, k := range n.kids {
		parts[i] = k.render()
	}
	return "(" + strings.Join(parts, " && ") + ")"
}

type notNode struct{ kid node }

func (n notNode) eval(r Record) bool { return !n.kid.eval(r) }
func (n notNode) render() string     { return "!" + n.kid.render() }

type cmpNode struct {
	field string
	op    string
	value string
}

func (n cmpNode) eval(r Record) bool {
	got, ok := r[n.field]
	if !ok {
		return false
	}
	if gf, err1 := strconv.ParseFloat(got, 64); err1 == nil {
		if wf, err2 := strconv.ParseFloat(n.value, 64); err2 == nil {
			return cmpFloat(gf, n.op, wf)
		}
	}
	return cmpString(got, n.op, n.value)
}

func (n cmpNode) render() string {
	return fmt.Sprintf("%s %s %q", n.field, n.op, n.value)
}

func cmpFloat(a float64, op string, b float64) bool {
	switch op {
	case "==":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

func cmpString(a, op, b string) bool {
	switch op {
	case "==":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

// --- Lexer ----------------------------------------------------------------

type tokKind int

const (
	tokIdent tokKind = iota
	tokValue         // quoted string or number
	tokOp            // comparison operator
	tokAnd
	tokOr
	tokNot
	tokLParen
	tokRParen
	tokEOF
)

type token struct {
	kind tokKind
	text string
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case c == '&':
			if i+1 >= len(src) || src[i+1] != '&' {
				return nil, fmt.Errorf("attr: expected '&&' at offset %d", i)
			}
			toks = append(toks, token{tokAnd, "&&"})
			i += 2
		case c == '|':
			if i+1 >= len(src) || src[i+1] != '|' {
				return nil, fmt.Errorf("attr: expected '||' at offset %d", i)
			}
			toks = append(toks, token{tokOr, "||"})
			i += 2
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "!="})
				i += 2
			} else {
				toks = append(toks, token{tokNot, "!"})
				i++
			}
		case c == '=':
			if i+1 < len(src) && src[i+1] == '=' {
				i += 2
			} else {
				i++
			}
			toks = append(toks, token{tokOp, "=="})
		case c == '<' || c == '>':
			op := string(c)
			i++
			if i < len(src) && src[i] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op})
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < len(src) && src[j] != quote {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("attr: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokValue, src[i+1 : j]})
			i = j + 1
		case isIdentChar(c):
			j := i
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("attr: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '.' || c == '-' || c == ':'
}

// --- Parser ----------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) eof() bool   { return p.peek().kind == tokEOF }

func (p *parser) parseExpr() (node, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []node{first}
	for p.peek().kind == tokOr {
		p.next()
		k, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return first, nil
	}
	return orNode{kids: kids}, nil
}

func (p *parser) parseAnd() (node, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []node{first}
	for p.peek().kind == tokAnd {
		p.next()
		k, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return first, nil
	}
	return andNode{kids: kids}, nil
}

func (p *parser) parseUnary() (node, error) {
	switch p.peek().kind {
	case tokNot:
		p.next()
		kid, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notNode{kid: kid}, nil
	case tokLParen:
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("attr: missing ')' before %q", p.peek().text)
		}
		p.next()
		return inner, nil
	default:
		return p.parseCmp()
	}
}

func (p *parser) parseCmp() (node, error) {
	f := p.next()
	if f.kind != tokIdent {
		return nil, fmt.Errorf("attr: expected field name, got %q", f.text)
	}
	op := p.next()
	if op.kind != tokOp {
		return nil, fmt.Errorf("attr: expected comparison operator after %q, got %q", f.text, op.text)
	}
	v := p.next()
	if v.kind != tokIdent && v.kind != tokValue {
		return nil, fmt.Errorf("attr: expected value after %q %s, got %q", f.text, op.text, v.text)
	}
	return cmpNode{field: f.text, op: op.text, value: v.text}, nil
}
