package plan

import (
	"fmt"
	"math/rand"

	"streamgraph/internal/query"
)

// GeneticConfig parameterizes the genetic optimizer. The zero value
// selects sensible defaults; Seed 0 is a valid (fixed) seed, so runs are
// reproducible by construction.
type GeneticConfig struct {
	Seed        int64
	Population  int     // default 48
	Generations int     // default 80
	Tournament  int     // default 3
	MutateProb  float64 // default 0.35
	Elite       int     // default 2
}

func (c GeneticConfig) withDefaults() GeneticConfig {
	if c.Population <= 0 {
		c.Population = 48
	}
	if c.Generations <= 0 {
		c.Generations = 80
	}
	if c.Tournament <= 0 {
		c.Tournament = 3
	}
	if c.MutateProb <= 0 {
		c.MutateProb = 0.35
	}
	if c.Elite < 0 {
		c.Elite = 0
	} else if c.Elite == 0 {
		c.Elite = 2
	}
	return c
}

// individual is an ordered list of indices into the primitive set,
// always representing a valid decomposition.
type individual struct {
	genes []int
	obj   float64
}

// Genetic runs a genetic search over valid decompositions: individuals
// are frontier-respecting primitive sequences, crossover splices a
// prefix of one parent with a completion guided by the other, and
// mutation regrows a random suffix. It handles queries beyond the exact
// optimizer's reach; on small queries it typically rediscovers the
// optimum (see the package tests).
func (p *Planner) Genetic(q *query.Graph, cfg GeneticConfig) ([][]int, Score, error) {
	cfg = cfg.withDefaults()
	prims, err := p.Primitives(q)
	if err != nil {
		return nil, Score{}, err
	}
	sortPrimitives(prims)
	ctx := &gaContext{
		p:               p,
		q:               q,
		prims:           prims,
		full:            uint32(1)<<uint(len(q.Edges)) - 1,
		requireFrontier: q.Connected(),
		rng:             rand.New(rand.NewSource(cfg.Seed)),
	}

	pop := make([]individual, cfg.Population)
	for i := range pop {
		pop[i] = ctx.evaluate(ctx.randomValid())
	}
	for g := 0; g < cfg.Generations; g++ {
		next := make([]individual, 0, cfg.Population)
		sortByObj(pop)
		for e := 0; e < cfg.Elite && e < len(pop); e++ {
			next = append(next, pop[e])
		}
		for len(next) < cfg.Population {
			a := ctx.tournament(pop, cfg.Tournament)
			b := ctx.tournament(pop, cfg.Tournament)
			child := ctx.crossover(a.genes, b.genes)
			if ctx.rng.Float64() < cfg.MutateProb {
				child = ctx.mutate(child)
			}
			next = append(next, ctx.evaluate(child))
		}
		pop = next
	}
	sortByObj(pop)
	best := pop[0]
	leaves := make([][]int, len(best.genes))
	for i, gi := range best.genes {
		leaves[i] = append([]int(nil), prims[gi].Edges...)
	}
	score := ctx.score(best.genes)
	return leaves, score, nil
}

type gaContext struct {
	p               *Planner
	q               *query.Graph
	prims           []Primitive
	full            uint32
	requireFrontier bool
	rng             *rand.Rand
}

// candidates returns the primitive indices extendable from the given
// covered-mask / frontier state.
func (c *gaContext) candidates(mask uint32, verts uint64) []int {
	var out []int
	for i, pr := range c.prims {
		if pr.mask&mask != 0 {
			continue
		}
		if mask != 0 && c.requireFrontier && pr.verts&verts == 0 {
			continue
		}
		out = append(out, i)
	}
	return out
}

// randomValid builds a uniformly random frontier-respecting
// decomposition. Single-edge primitives guarantee progress, so the
// construction always terminates with full coverage.
func (c *gaContext) randomValid() []int {
	var genes []int
	var mask uint32
	var verts uint64
	for mask != c.full {
		cand := c.candidates(mask, verts)
		gi := cand[c.rng.Intn(len(cand))]
		genes = append(genes, gi)
		mask |= c.prims[gi].mask
		verts |= c.prims[gi].verts
	}
	return genes
}

// crossover keeps a random prefix of a, then completes it preferring
// b's primitives (in b's order) and falling back to random choices.
func (c *gaContext) crossover(a, b []int) []int {
	cut := 0
	if len(a) > 1 {
		cut = c.rng.Intn(len(a))
	}
	genes := append([]int(nil), a[:cut]...)
	var mask uint32
	var verts uint64
	for _, gi := range genes {
		mask |= c.prims[gi].mask
		verts |= c.prims[gi].verts
	}
	for _, gi := range b {
		pr := c.prims[gi]
		if pr.mask&mask != 0 {
			continue
		}
		if mask != 0 && c.requireFrontier && pr.verts&verts == 0 {
			continue
		}
		genes = append(genes, gi)
		mask |= pr.mask
		verts |= pr.verts
	}
	for mask != c.full {
		cand := c.candidates(mask, verts)
		gi := cand[c.rng.Intn(len(cand))]
		genes = append(genes, gi)
		mask |= c.prims[gi].mask
		verts |= c.prims[gi].verts
	}
	return genes
}

// mutate truncates the individual at a random point and regrows the
// suffix randomly.
func (c *gaContext) mutate(genes []int) []int {
	if len(genes) == 0 {
		return c.randomValid()
	}
	cut := c.rng.Intn(len(genes))
	out := append([]int(nil), genes[:cut]...)
	var mask uint32
	var verts uint64
	for _, gi := range out {
		mask |= c.prims[gi].mask
		verts |= c.prims[gi].verts
	}
	for mask != c.full {
		cand := c.candidates(mask, verts)
		gi := cand[c.rng.Intn(len(cand))]
		out = append(out, gi)
		mask |= c.prims[gi].mask
		verts |= c.prims[gi].verts
	}
	return out
}

func (c *gaContext) tournament(pop []individual, k int) individual {
	best := pop[c.rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		if cand := pop[c.rng.Intn(len(pop))]; cand.obj < best.obj {
			best = cand
		}
	}
	return best
}

// score evaluates a gene sequence with the same chain model as
// ScoreLeaves, without re-resolving primitives.
func (c *gaContext) score(genes []int) Score {
	n := float64(c.p.Stats.EdgeTotal())
	if n < 1 {
		n = 1
	}
	st := c.p.startChain(c.prims[genes[0]])
	prefix := append([]int(nil), c.prims[genes[0]].Edges...)
	for i := 1; i < len(genes); i++ {
		pr := c.prims[genes[i]]
		ext := c.p.extFactor(c.q, prefix, pr)
		st = c.p.extendChain(st, pr, len(prefix), ext, n)
		prefix = append(prefix, pr.Edges...)
	}
	return st.score()
}

func (c *gaContext) evaluate(genes []int) individual {
	return individual{genes: genes, obj: c.p.objective(c.score(genes))}
}

func sortByObj(pop []individual) {
	for i := 1; i < len(pop); i++ {
		for j := i; j > 0 && pop[j].obj < pop[j-1].obj; j-- {
			pop[j], pop[j-1] = pop[j-1], pop[j]
		}
	}
}

// Best runs the appropriate optimizer for the query size: the exact DP
// when it fits, the genetic search otherwise.
func (p *Planner) Best(q *query.Graph, cfg GeneticConfig) ([][]int, Score, error) {
	maxEdges := p.MaxDPEdges
	if maxEdges <= 0 {
		maxEdges = 14
	}
	if len(q.Edges) <= maxEdges {
		return p.Optimal(q)
	}
	if len(q.Edges) > 32 {
		return nil, Score{}, fmt.Errorf("plan: query has %d edges; planner supports at most 32", len(q.Edges))
	}
	return p.Genetic(q, cfg)
}
