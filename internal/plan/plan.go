// Package plan implements cost-driven SJ-Tree generation beyond the
// paper's greedy heuristic. Section 5 of Choudhury et al. (EDBT 2015)
// motivates the greedy BUILD-SJ-TREE with the join-ordering literature
// and explicitly points at "techniques such as dynamic programming and
// genetic algorithms to find the optimal join order" as the follow-up;
// this package provides both:
//
//   - Optimal: an exact dynamic program over edge subsets that searches
//     every valid (partition, left-deep order) pair at once, keeping a
//     Pareto frontier of (work, space, prefix frequency) per subset.
//   - Genetic: a seeded genetic algorithm over valid decompositions for
//     queries too large for the exact search.
//
// Primitives are 1-edge subgraphs, 2-edge paths and (optionally)
// triangles — the three shapes whose frequencies the statistics
// machinery can estimate (Section 5.1 foresees exactly this triangle
// extension). Scores come from the paper's analytical models: the
// Appendix A per-edge work C(T) and the Section 5.2 space S(T).
package plan

import (
	"fmt"
	"math"
	"sort"

	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
)

// Stats is the statistics surface the planner needs: selectivities plus
// the totals that turn them into absolute frequencies. Both the exact
// selectivity.Collector and the bounded-memory sketch.Estimator satisfy
// it.
type Stats interface {
	selectivity.Source
	EdgeTotal() int64
	PathTotal() int64
}

// TriangleInfo carries the global triangle statistics used to score
// triangle primitives: the (estimated) number of triangles and wedges
// (2-edge paths) in the data. Obtain them from selectivity.ExactTriangles
// or selectivity.TriangleEstimator.
type TriangleInfo struct {
	Triangles float64
	Wedges    float64
}

// Closure returns the global closure probability: the chance that a
// wedge closes into a triangle, 3·T/W (every triangle contains three
// wedges). Zero when no wedges were observed.
func (ti TriangleInfo) Closure() float64 {
	if ti.Wedges <= 0 {
		return 0
	}
	c := 3 * ti.Triangles / ti.Wedges
	if c > 1 {
		c = 1
	}
	return c
}

// Score is the planner's estimate of a decomposition's runtime behavior.
type Score struct {
	// Work is the Appendix A estimate of average work per incoming edge.
	Work float64
	// Space is the Section 5.2 estimate S(T) of stored partial matches
	// weighted by their sizes, over the observed stream length.
	Space float64
	// ExpectedSel is Ŝ(T), the product of leaf selectivities.
	ExpectedSel float64
}

// Planner scores and optimizes decompositions for one statistics source.
type Planner struct {
	// Stats supplies selectivities and totals. Required.
	Stats Stats

	// AvgDegree is d̄, the average vertex degree used by the search-cost
	// terms (a 2-edge leaf search costs O(d̄), a triangle O(d̄²)).
	// Zero defaults to 8.
	AvgDegree float64

	// Triangles enables triangle primitives when non-nil: 3-edge cyclic
	// leaves are admitted and scored with the closure estimate
	// freq ≈ Closure · min(wedge frequencies of the triangle's 2-paths).
	Triangles *TriangleInfo

	// MaxDPEdges bounds the exact optimizer; queries with more edges are
	// rejected by Optimal (use Genetic). Zero defaults to 14.
	MaxDPEdges int

	// NonLazy switches the work model to the paper's Appendix A form,
	// which charges every leaf search on every edge (the Single/Path
	// strategies). The default (false) models Lazy Search: the search
	// for leaf i>0 only runs near vertices the preceding prefix has
	// enabled, so its cost is gated by min(1, prefixFreq/N) — this is
	// what makes rare-first orders strictly cheaper (Theorem 1).
	NonLazy bool

	// NumVertices is the (estimated) vertex count of the data stream,
	// used by the independence fallback for join cardinalities between
	// disconnected pieces. Zero derives it as 2·EdgeTotal/AvgDegree.
	NumVertices float64

	// Objective folds a Score into the scalar minimized by the
	// optimizers. Nil defaults to work + space amortized per stream
	// edge: Work + Space/N.
	Objective func(Score) float64
}

func (p *Planner) avgDegree() float64 {
	if p.AvgDegree > 0 {
		return p.AvgDegree
	}
	return 8
}

func (p *Planner) objective(s Score) float64 {
	if p.Objective != nil {
		return p.Objective(s)
	}
	n := float64(p.Stats.EdgeTotal())
	if n < 1 {
		n = 1
	}
	return s.Work + s.Space/n
}

// --- Primitive enumeration ----------------------------------------------

// Primitive is a candidate SJ-Tree leaf with its precomputed score
// inputs.
type Primitive struct {
	Edges      []int   // query edge indices, sorted
	Freq       float64 // expected stored matches over the observed stream
	SearchCost float64 // per-anchored-search cost (1, d̄ or d̄²)
	Sel        float64 // subgraph selectivity within its size class

	mask  uint32 // bitmask over query edges
	verts uint64 // bitmask over query vertices
}

// Primitives enumerates every admissible leaf of q: all single edges,
// all 2-edge paths (edge pairs sharing exactly one vertex), and — when
// the planner has triangle statistics — all triangles. Unseen shapes
// (selectivity zero) are kept with frequency zero; the optimizers avoid
// them through the score, mirroring the paper's fallback behavior.
func (p *Planner) Primitives(q *query.Graph) ([]Primitive, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(q.Edges) > 32 {
		return nil, fmt.Errorf("plan: query has %d edges; planner supports at most 32", len(q.Edges))
	}
	if len(q.Vertices) > 64 {
		return nil, fmt.Errorf("plan: query has %d vertices; planner supports at most 64", len(q.Vertices))
	}
	d := p.avgDegree()
	var prims []Primitive

	for i := range q.Edges {
		sel := p.Stats.EdgeSelectivity(q.Edges[i].Type)
		prims = append(prims, Primitive{
			Edges:      []int{i},
			Freq:       sel * float64(p.Stats.EdgeTotal()),
			SearchCost: 1,
			Sel:        sel,
			mask:       1 << uint(i),
			verts:      vertMask(q, []int{i}),
		})
	}
	for i := range q.Edges {
		for j := i + 1; j < len(q.Edges); j++ {
			if !sharesExactlyOneVertex(q.Edges[i], q.Edges[j]) {
				continue
			}
			sel, err := selectivity.LeafSelectivityOf(p.Stats, q, []int{i, j})
			if err != nil {
				return nil, err
			}
			prims = append(prims, Primitive{
				Edges:      []int{i, j},
				Freq:       sel * float64(p.Stats.PathTotal()),
				SearchCost: d,
				Sel:        sel,
				mask:       1<<uint(i) | 1<<uint(j),
				verts:      vertMask(q, []int{i, j}),
			})
		}
	}
	if p.Triangles != nil {
		for _, tri := range triangles(q) {
			freq, sel := p.triangleScore(q, tri)
			prims = append(prims, Primitive{
				Edges:      tri[:],
				Freq:       freq,
				SearchCost: d * d,
				Sel:        sel,
				mask:       1<<uint(tri[0]) | 1<<uint(tri[1]) | 1<<uint(tri[2]),
				verts:      vertMask(q, tri[:]),
			})
		}
	}
	return prims, nil
}

// triangleScore estimates a triangle leaf's frequency as the global
// closure probability times the frequency of its most selective wedge
// (every embedding of the triangle contains an embedding of each of its
// three 2-edge paths, so each wedge frequency is an upper bound; the
// closure factor discounts wedges that never close).
func (p *Planner) triangleScore(q *query.Graph, tri [3]int) (freq, sel float64) {
	minWedge := math.Inf(1)
	pairs := [3][2]int{{tri[0], tri[1]}, {tri[0], tri[2]}, {tri[1], tri[2]}}
	for _, pr := range pairs {
		s, err := selectivity.LeafSelectivityOf(p.Stats, q, []int{pr[0], pr[1]})
		if err != nil {
			return 0, 0
		}
		if f := s * float64(p.Stats.PathTotal()); f < minWedge {
			minWedge = f
		}
	}
	if math.IsInf(minWedge, 1) {
		return 0, 0
	}
	freq = p.Triangles.Closure() * minWedge
	if t := p.Triangles.Triangles; t > 0 {
		sel = freq / t
		if sel > 1 {
			sel = 1
		}
	}
	return freq, sel
}

// triangles enumerates the 3-edge subsets of q that form a triangle:
// three edges over exactly three vertices, each vertex incident to
// exactly two of them (direction-agnostic).
func triangles(q *query.Graph) [][3]int {
	var out [][3]int
	n := len(q.Edges)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				deg := map[int]int{}
				for _, ei := range []int{i, j, k} {
					deg[q.Edges[ei].Src]++
					deg[q.Edges[ei].Dst]++
				}
				if len(deg) != 3 {
					continue
				}
				ok := true
				for _, d := range deg {
					if d != 2 {
						ok = false
						break
					}
				}
				if ok {
					out = append(out, [3]int{i, j, k})
				}
			}
		}
	}
	return out
}

func vertMask(q *query.Graph, edges []int) uint64 {
	var m uint64
	for _, ei := range edges {
		m |= 1 << uint(q.Edges[ei].Src)
		m |= 1 << uint(q.Edges[ei].Dst)
	}
	return m
}

func sharesExactlyOneVertex(a, b query.Edge) bool {
	shared := 0
	for _, v := range []int{a.Src, a.Dst} {
		if v == b.Src || v == b.Dst {
			shared++
		}
	}
	return shared == 1
}

// --- Scoring -------------------------------------------------------------

// The join-cardinality model. The paper's Section 5.2 approximates an
// internal node's frequency by the minimum of its children's — an
// "upper bound" that in fact underpredicts badly on skewed streams,
// where joining two frequent subgraphs through a hub vertex multiplies
// rather than minimizes (the number of TCP->TCP two-hop paths is
// Σ_v d_in(v)·d_out(v), not min(f_TCP, f_TCP)). The 2-edge path
// distribution the engine already collects measures exactly those
// per-vertex degree products, so the planner estimates the join of a
// prefix with a new leaf as
//
//	f(P ⋈ L) = f(P) · ext,  ext = min over connecting query-edge pairs
//	           (pe ∈ P, le ∈ L sharing one vertex) of
//	           wedgeFreq(pe, le) / edgeFreq(pe)
//
// — the average number of le-continuations per pe instance, taking the
// most selective connection when the pieces touch in several places.
// For two single-edge leaves this reproduces the measured wedge count
// exactly. Pieces with no 1-vertex connection fall back to the
// independence estimate f(P)·f(L)/V.

// extFactor returns ext for appending primitive pr to a prefix
// consisting of the given query edges.
func (p *Planner) extFactor(q *query.Graph, prefixEdges []int, pr Primitive) float64 {
	best := math.Inf(1)
	for _, pe := range prefixEdges {
		fpe := p.Stats.EdgeSelectivity(q.Edges[pe].Type) * float64(p.Stats.EdgeTotal())
		for _, le := range pr.Edges {
			if !sharesExactlyOneVertex(q.Edges[pe], q.Edges[le]) {
				continue
			}
			sel, err := selectivity.LeafSelectivityOf(p.Stats, q, []int{pe, le})
			if err != nil {
				continue
			}
			wedge := sel * float64(p.Stats.PathTotal())
			if fpe <= 0 {
				// An unseen prefix edge type: the prefix is empty in
				// expectation, any continuation factor will do.
				return 0
			}
			if ext := wedge / fpe; ext < best {
				best = ext
			}
		}
	}
	if math.IsInf(best, 1) {
		// No single-shared-vertex connection (disconnected piece or a
		// parallel edge): independence estimate.
		return pr.Freq / p.vertexCount()
	}
	return best
}

func (p *Planner) vertexCount() float64 {
	if p.NumVertices > 0 {
		return p.NumVertices
	}
	v := 2 * float64(p.Stats.EdgeTotal()) / p.avgDegree()
	if v < 1 {
		v = 1
	}
	return v
}

// chainState carries the running score of a partially built
// decomposition: accumulated work and space, the estimated frequency of
// the joined prefix, and the selectivity product.
type chainState struct {
	work     float64
	space    float64
	prefFreq float64
	selProd  float64
}

func (p *Planner) startChain(pr Primitive) chainState {
	return chainState{
		work:     pr.SearchCost,
		space:    float64(len(pr.Edges)) * pr.Freq,
		prefFreq: pr.Freq,
		selProd:  pr.Sel,
	}
}

// extendChain appends pr to the chain. prefixEdgeCount is the number of
// query edges covered before pr; ext is extFactor for this step.
func (p *Planner) extendChain(st chainState, pr Primitive, prefixEdgeCount int, ext float64, n float64) chainState {
	fJoin := st.prefFreq * ext
	return chainState{
		work: st.work + pr.SearchCost*p.searchGate(st.prefFreq, n) +
			(st.prefFreq+pr.Freq+fJoin)/n,
		space: st.space + float64(len(pr.Edges))*pr.Freq +
			float64(prefixEdgeCount+len(pr.Edges))*fJoin,
		prefFreq: fJoin,
		selProd:  st.selProd * pr.Sel,
	}
}

func (st chainState) score() Score {
	return Score{Work: st.work, Space: st.space, ExpectedSel: st.selProd}
}

// ScoreLeaves evaluates an ordered decomposition with the analytical
// models. It accepts any leaves the primitive set admits (1-edge,
// 2-edge path, triangle).
func (p *Planner) ScoreLeaves(q *query.Graph, leaves [][]int) (Score, error) {
	if err := ValidateDecomposition(q, leaves); err != nil {
		return Score{}, err
	}
	prims, err := p.resolve(q, leaves)
	if err != nil {
		return Score{}, err
	}
	n := float64(p.Stats.EdgeTotal())
	if n < 1 {
		n = 1
	}
	st := p.startChain(prims[0])
	prefix := append([]int(nil), prims[0].Edges...)
	for i := 1; i < len(prims); i++ {
		ext := p.extFactor(q, prefix, prims[i])
		st = p.extendChain(st, prims[i], len(prefix), ext, n)
		prefix = append(prefix, prims[i].Edges...)
	}
	return st.score(), nil
}

// searchGate is the fraction of edge arrivals on which a non-first
// leaf's anchored search actually runs: 1 under the non-lazy model,
// min(1, prefixFreq/N) under Lazy Search.
func (p *Planner) searchGate(prefixFreq, n float64) float64 {
	if p.NonLazy {
		return 1
	}
	return math.Min(1, prefixFreq/n)
}

// resolve maps leaf edge lists back to scored primitives.
func (p *Planner) resolve(q *query.Graph, leaves [][]int) ([]Primitive, error) {
	prims, err := p.Primitives(q)
	if err != nil {
		return nil, err
	}
	byMask := make(map[uint32]Primitive, len(prims))
	for _, pr := range prims {
		byMask[pr.mask] = pr
	}
	out := make([]Primitive, 0, len(leaves))
	for _, leaf := range leaves {
		var m uint32
		for _, ei := range leaf {
			m |= 1 << uint(ei)
		}
		pr, ok := byMask[m]
		if !ok {
			return nil, fmt.Errorf("plan: leaf %v is not an admissible primitive", leaf)
		}
		out = append(out, pr)
	}
	return out, nil
}

// ValidateDecomposition checks that leaves disjointly cover every query
// edge and that each leaf after the first touches a vertex already
// covered (the frontier discipline the engine's Lazy Search relies on
// for connected queries; disconnected queries are exempt from the
// frontier check once no touching leaf remains).
func ValidateDecomposition(q *query.Graph, leaves [][]int) error {
	if len(leaves) == 0 {
		return fmt.Errorf("plan: empty decomposition")
	}
	if len(q.Vertices) > 64 {
		return fmt.Errorf("plan: query has %d vertices; planner supports at most 64", len(q.Vertices))
	}
	covered := make([]bool, len(q.Edges))
	var frontier uint64
	connected := q.Connected()
	for i, leaf := range leaves {
		if len(leaf) == 0 {
			return fmt.Errorf("plan: leaf %d is empty", i)
		}
		for _, ei := range leaf {
			if ei < 0 || ei >= len(q.Edges) {
				return fmt.Errorf("plan: leaf %d references edge %d out of range", i, ei)
			}
			if covered[ei] {
				return fmt.Errorf("plan: edge %d covered twice", ei)
			}
			covered[ei] = true
		}
		vm := vertMask(q, leaf)
		if i > 0 && connected && frontier&vm == 0 {
			return fmt.Errorf("plan: leaf %d (%v) does not touch the frontier", i, leaf)
		}
		frontier |= vm
	}
	for ei, ok := range covered {
		if !ok {
			return fmt.Errorf("plan: edge %d not covered", ei)
		}
	}
	return nil
}

// Leaves renders primitives back to the engine's leaf representation.
func Leaves(prims []Primitive) [][]int {
	out := make([][]int, len(prims))
	for i, pr := range prims {
		out[i] = append([]int(nil), pr.Edges...)
	}
	return out
}

// sortPrimitives orders primitives by ascending frequency then mask for
// deterministic iteration.
func sortPrimitives(prims []Primitive) {
	sort.Slice(prims, func(i, j int) bool {
		if prims[i].Freq != prims[j].Freq {
			return prims[i].Freq < prims[j].Freq
		}
		return prims[i].mask < prims[j].mask
	})
}
