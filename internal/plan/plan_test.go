package plan

import (
	"math"
	"math/rand"
	"testing"

	"streamgraph/internal/datagen"
	"streamgraph/internal/decompose"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
)

// trainedCollector returns exact statistics over a deterministic netflow
// sample.
func trainedCollector(t testing.TB, edges int) *selectivity.Collector {
	t.Helper()
	c := selectivity.NewCollector()
	c.AddAll(datagen.Netflow(datagen.NetflowConfig{Edges: edges, Hosts: edges / 10, Seed: 23}))
	return c
}

func newPlanner(t testing.TB) *Planner {
	return &Planner{Stats: trainedCollector(t, 20000), AvgDegree: 6}
}

func pathQuery(types ...string) *query.Graph { return query.NewPath("ip", types...) }

func TestPrimitivesEnumeration(t *testing.T) {
	p := newPlanner(t)
	q := pathQuery("TCP", "UDP", "ICMP") // 3 edges, 4 vertices
	prims, err := p.Primitives(q)
	if err != nil {
		t.Fatal(err)
	}
	// 3 single edges + 2 adjacent pairs (0-1, 1-2); the (0,2) pair shares
	// no vertex.
	singles, pairs := 0, 0
	for _, pr := range prims {
		switch len(pr.Edges) {
		case 1:
			singles++
		case 2:
			pairs++
		default:
			t.Fatalf("unexpected primitive size %d", len(pr.Edges))
		}
	}
	if singles != 3 || pairs != 2 {
		t.Fatalf("got %d singles, %d pairs; want 3 and 2", singles, pairs)
	}
}

func TestPrimitivesIncludeTrianglesOnlyWhenEnabled(t *testing.T) {
	q := &query.Graph{}
	a := q.AddVertex("a", "ip")
	b := q.AddVertex("b", "ip")
	c := q.AddVertex("c", "ip")
	q.AddEdge(a, b, "TCP")
	q.AddEdge(b, c, "UDP")
	q.AddEdge(c, a, "ICMP")

	p := newPlanner(t)
	prims, err := p.Primitives(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range prims {
		if len(pr.Edges) == 3 {
			t.Fatal("triangle primitive admitted without triangle stats")
		}
	}
	p.Triangles = &TriangleInfo{Triangles: 100, Wedges: 10000}
	prims, err = p.Primitives(q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pr := range prims {
		if len(pr.Edges) == 3 {
			found = true
			if pr.Freq <= 0 {
				t.Fatal("triangle primitive has zero frequency despite closure > 0")
			}
		}
	}
	if !found {
		t.Fatal("triangle primitive missing")
	}
}

func TestTriangleClosureClamped(t *testing.T) {
	ti := TriangleInfo{Triangles: 100, Wedges: 30}
	if c := ti.Closure(); c != 1 {
		t.Fatalf("Closure = %v, want clamped to 1", c)
	}
	if c := (TriangleInfo{}).Closure(); c != 0 {
		t.Fatalf("empty Closure = %v, want 0", c)
	}
}

func TestValidateDecomposition(t *testing.T) {
	q := pathQuery("TCP", "UDP", "ICMP")
	for _, tc := range []struct {
		name   string
		leaves [][]int
		ok     bool
	}{
		{"single cover", [][]int{{0}, {1}, {2}}, true},
		{"pair then single", [][]int{{0, 1}, {2}}, true},
		{"frontier violation", [][]int{{0}, {2}, {1}}, false},
		{"duplicate edge", [][]int{{0}, {0}, {1}, {2}}, false},
		{"missing edge", [][]int{{0}, {1}}, false},
		{"empty leaf", [][]int{{0}, {}, {1}, {2}}, false},
		{"out of range", [][]int{{0}, {1}, {7}}, false},
		{"empty decomposition", nil, false},
	} {
		err := ValidateDecomposition(q, tc.leaves)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestScoreLeavesMatchesManualModel(t *testing.T) {
	p := newPlanner(t)
	q := pathQuery("TCP", "UDP")
	sc, err := p.ScoreLeaves(q, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats
	n := float64(st.EdgeTotal())
	f0 := st.EdgeSelectivity("TCP") * n
	f1 := st.EdgeSelectivity("UDP") * n
	// The join of the two single-edge leaves is the measured wedge count
	// of the TCP(in)-UDP(out) shape at the shared center vertex.
	wedge := st.PathSelectivity("TCP", selectivity.In, "UDP", selectivity.Out) * float64(st.PathTotal())
	wantWork := 1 + math.Min(1, f0/n) + (f0+f1+wedge)/n
	wantSpace := f0 + f1 + 2*wedge
	if math.Abs(sc.Work-wantWork) > 1e-9 {
		t.Errorf("Work = %v, want %v", sc.Work, wantWork)
	}
	if math.Abs(sc.Space-wantSpace) > 1e-9 {
		t.Errorf("Space = %v, want %v", sc.Space, wantSpace)
	}
	wantSel := st.EdgeSelectivity("TCP") * st.EdgeSelectivity("UDP")
	if math.Abs(sc.ExpectedSel-wantSel) > 1e-12 {
		t.Errorf("ExpectedSel = %v, want %v", sc.ExpectedSel, wantSel)
	}
}

func TestScoreLeavesRejectsNonPrimitive(t *testing.T) {
	p := newPlanner(t)
	q := pathQuery("TCP", "UDP", "ICMP")
	// {0,1,2} is a 3-edge path, not an admissible primitive.
	if _, err := p.ScoreLeaves(q, [][]int{{0, 1, 2}}); err == nil {
		t.Fatal("3-edge path accepted as a primitive")
	}
}

// bruteForceBest enumerates every valid (partition, order) decomposition
// recursively and returns the minimum objective.
func bruteForceBest(t *testing.T, p *Planner, q *query.Graph) float64 {
	t.Helper()
	prims, err := p.Primitives(q)
	if err != nil {
		t.Fatal(err)
	}
	full := uint32(1)<<uint(len(q.Edges)) - 1
	requireFrontier := q.Connected()
	best := math.Inf(1)
	var rec func(mask uint32, verts uint64, chain []Primitive)
	rec = func(mask uint32, verts uint64, chain []Primitive) {
		if mask == full {
			leaves := Leaves(chain)
			sc, err := p.ScoreLeaves(q, leaves)
			if err != nil {
				t.Fatalf("brute force produced invalid leaves %v: %v", leaves, err)
			}
			if obj := p.objective(sc); obj < best {
				best = obj
			}
			return
		}
		for _, pr := range prims {
			if pr.mask&mask != 0 {
				continue
			}
			if mask != 0 && requireFrontier && pr.verts&verts == 0 {
				continue
			}
			rec(mask|pr.mask, verts|pr.verts, append(chain, pr))
		}
	}
	rec(0, 0, nil)
	return best
}

func TestOptimalMatchesBruteForce(t *testing.T) {
	p := newPlanner(t)
	queries := []*query.Graph{
		pathQuery("TCP"),
		pathQuery("TCP", "UDP"),
		pathQuery("ESP", "TCP", "ICMP"),
		pathQuery("ESP", "TCP", "ICMP", "GRE"),
		datagen.RandomBinaryTreeQuery(rand.New(rand.NewSource(5)), datagen.NetflowProtocols, 5, "ip"),
	}
	for qi, q := range queries {
		leaves, score, err := p.Optimal(q)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if err := ValidateDecomposition(q, leaves); err != nil {
			t.Fatalf("query %d: optimal produced invalid decomposition: %v", qi, err)
		}
		got := p.objective(score)
		want := bruteForceBest(t, p, q)
		if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
			t.Errorf("query %d: DP objective %v != brute force %v", qi, got, want)
		}
		// The reported score must agree with re-scoring the leaves.
		rescored, err := p.ScoreLeaves(q, leaves)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if math.Abs(p.objective(rescored)-got) > 1e-6*math.Max(1, got) {
			t.Errorf("query %d: reported score %v disagrees with re-score %v", qi, got, p.objective(rescored))
		}
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	c := trainedCollector(t, 20000)
	p := &Planner{Stats: c, AvgDegree: 6}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 20; i++ {
		q := datagen.RandomPathQuery(rng, datagen.NetflowProtocols, 3+rng.Intn(3), "ip")
		leaves, score, err := p.Optimal(q)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateDecomposition(q, leaves); err != nil {
			t.Fatalf("invalid optimal decomposition: %v", err)
		}
		for _, greedy := range greedyCandidates(t, q, c) {
			gs, err := p.ScoreLeaves(q, greedy)
			if err != nil {
				continue // greedy may emit non-frontier orders for odd queries
			}
			if p.objective(score) > p.objective(gs)*(1+1e-9) {
				t.Errorf("query %d: optimal %v worse than greedy %v", i, p.objective(score), p.objective(gs))
			}
		}
	}
}

func greedyCandidates(t *testing.T, q *query.Graph, c *selectivity.Collector) [][][]int {
	t.Helper()
	var out [][][]int
	if single, err := decompose.SingleDecompose(q, c); err == nil {
		out = append(out, single)
	}
	if path, _, err := decompose.PathDecompose(q, c); err == nil {
		out = append(out, path)
	}
	return out
}

func TestOptimalRejectsOversizedQuery(t *testing.T) {
	p := newPlanner(t)
	p.MaxDPEdges = 3
	q := pathQuery("TCP", "UDP", "ICMP", "GRE")
	if _, _, err := p.Optimal(q); err == nil {
		t.Fatal("Optimal accepted query beyond MaxDPEdges")
	}
}

func TestOptimalPrefersRarePrimitiveFirst(t *testing.T) {
	// Build statistics where ESP is vanishingly rare and TCP dominant;
	// the optimal first leaf must contain the ESP edge (Theorem 1).
	c := selectivity.NewCollector()
	c.AddAll(datagen.Netflow(datagen.NetflowConfig{Edges: 30000, Hosts: 3000, Seed: 9}))
	p := &Planner{Stats: c, AvgDegree: 6}
	q := pathQuery("TCP", "TCP", "ESP")
	leaves, _, err := p.Optimal(q)
	if err != nil {
		t.Fatal(err)
	}
	hasESP := false
	for _, ei := range leaves[0] {
		if q.Edges[ei].Type == "ESP" {
			hasESP = true
		}
	}
	if !hasESP {
		t.Fatalf("first leaf %v does not contain the rare ESP edge; leaves=%v", leaves[0], leaves)
	}
}

func TestBestDispatches(t *testing.T) {
	p := newPlanner(t)
	p.MaxDPEdges = 3
	small := pathQuery("TCP", "UDP")
	if _, _, err := p.Best(small, GeneticConfig{}); err != nil {
		t.Fatalf("Best on small query: %v", err)
	}
	big := pathQuery("TCP", "UDP", "ICMP", "GRE", "ESP")
	leaves, _, err := p.Best(big, GeneticConfig{Generations: 10, Population: 16})
	if err != nil {
		t.Fatalf("Best on big query: %v", err)
	}
	if err := ValidateDecomposition(big, leaves); err != nil {
		t.Fatalf("Best produced invalid decomposition: %v", err)
	}
}
