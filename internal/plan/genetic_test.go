package plan

import (
	"math"
	"math/rand"
	"testing"

	"streamgraph/internal/datagen"
	"streamgraph/internal/query"
)

func TestGeneticProducesValidDecompositions(t *testing.T) {
	p := newPlanner(t)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		q := datagen.RandomPathQuery(rng, datagen.NetflowProtocols, 4+rng.Intn(4), "ip")
		leaves, score, err := p.Genetic(q, GeneticConfig{Seed: int64(i), Generations: 20, Population: 24})
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateDecomposition(q, leaves); err != nil {
			t.Fatalf("query %d: invalid GA decomposition %v: %v", i, leaves, err)
		}
		rescored, err := p.ScoreLeaves(q, leaves)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.objective(score)-p.objective(rescored)) > 1e-9*math.Max(1, p.objective(score)) {
			t.Fatalf("query %d: GA score %v != re-score %v", i, p.objective(score), p.objective(rescored))
		}
	}
}

func TestGeneticDeterministicForSeed(t *testing.T) {
	p := newPlanner(t)
	q := pathQuery("ESP", "TCP", "ICMP", "GRE", "UDP")
	l1, s1, err := p.Genetic(q, GeneticConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	l2, s2, err := p.Genetic(q, GeneticConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("same seed, different scores: %+v vs %+v", s1, s2)
	}
	if len(l1) != len(l2) {
		t.Fatalf("same seed, different leaf counts: %v vs %v", l1, l2)
	}
	for i := range l1 {
		if len(l1[i]) != len(l2[i]) {
			t.Fatalf("same seed, different decompositions: %v vs %v", l1, l2)
		}
		for j := range l1[i] {
			if l1[i][j] != l2[i][j] {
				t.Fatalf("same seed, different decompositions: %v vs %v", l1, l2)
			}
		}
	}
}

func TestGeneticFindsOptimumOnSmallQueries(t *testing.T) {
	p := newPlanner(t)
	for i, q := range []*query.Graph{
		pathQuery("ESP", "TCP", "ICMP"),
		pathQuery("ESP", "TCP", "ICMP", "GRE"),
	} {
		_, opt, err := p.Optimal(q)
		if err != nil {
			t.Fatal(err)
		}
		_, ga, err := p.Genetic(q, GeneticConfig{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		// The GA is a heuristic, but on 3-4 edge queries with default
		// budgets it reliably reaches the optimum.
		if p.objective(ga) > p.objective(opt)*(1+1e-6) {
			t.Errorf("query %d: GA objective %v missed optimum %v", i, p.objective(ga), p.objective(opt))
		}
	}
}

func TestGeneticBeatsRandomBaseline(t *testing.T) {
	p := newPlanner(t)
	q := pathQuery("ESP", "TCP", "ICMP", "GRE", "UDP", "TCP", "ICMP")
	_, ga, err := p.Genetic(q, GeneticConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Average objective of pure random decompositions.
	prims, err := p.Primitives(q)
	if err != nil {
		t.Fatal(err)
	}
	sortPrimitives(prims)
	ctx := &gaContext{
		p: p, q: q, prims: prims,
		full:            uint32(1)<<uint(len(q.Edges)) - 1,
		requireFrontier: true,
		rng:             rand.New(rand.NewSource(2)),
	}
	sum, k := 0.0, 50
	for i := 0; i < k; i++ {
		sum += ctx.evaluate(ctx.randomValid()).obj
	}
	if avg := sum / float64(k); p.objective(ga) > avg {
		t.Fatalf("GA objective %v not better than average random %v", p.objective(ga), avg)
	}
}

func TestGeneticConfigDefaults(t *testing.T) {
	c := GeneticConfig{}.withDefaults()
	if c.Population <= 0 || c.Generations <= 0 || c.Tournament <= 0 || c.MutateProb <= 0 || c.Elite <= 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	c2 := GeneticConfig{Elite: -1}.withDefaults()
	if c2.Elite != 0 {
		t.Fatalf("negative elite should clamp to 0, got %d", c2.Elite)
	}
}
