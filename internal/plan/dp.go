package plan

import (
	"fmt"
	"math"
	"math/bits"

	"streamgraph/internal/query"
)

// dpState is one Pareto point for a covered-edge subset: the accumulated
// work and space, the estimated prefix join frequency (which alone
// determines all future join costs), and backtracking links.
type dpState struct {
	work     float64
	space    float64
	prefFreq float64
	selProd  float64

	primIdx   int // primitive appended to reach this state (-1 at origin)
	prevMask  uint32
	prevState int
}

// dominates reports componentwise domination: every future increment is
// monotone in (work, space, prefFreq), so a completion of b can never
// beat the same completion of a.
func (a dpState) dominates(b dpState) bool {
	return a.work <= b.work && a.space <= b.space && a.prefFreq <= b.prefFreq
}

// Optimal searches every valid decomposition of q — every partition of
// its edges into admissible primitives crossed with every frontier-
// respecting left-deep order — and returns the one minimizing the
// planner objective. The search is a dynamic program over edge subsets
// keeping a Pareto frontier of (work, space, min leaf frequency) per
// subset; it is exact with respect to the analytical cost model.
//
// Queries with more than MaxDPEdges edges are rejected; use Genetic.
func (p *Planner) Optimal(q *query.Graph) ([][]int, Score, error) {
	maxEdges := p.MaxDPEdges
	if maxEdges <= 0 {
		maxEdges = 14
	}
	if len(q.Edges) > maxEdges {
		return nil, Score{}, fmt.Errorf("plan: query has %d edges, exact optimizer limited to %d (use Genetic)",
			len(q.Edges), maxEdges)
	}
	prims, err := p.Primitives(q)
	if err != nil {
		return nil, Score{}, err
	}
	sortPrimitives(prims)

	n := float64(p.Stats.EdgeTotal())
	if n < 1 {
		n = 1
	}
	full := uint32(1)<<uint(len(q.Edges)) - 1
	requireFrontier := q.Connected()

	// Vertex masks per primitive and incrementally per subset.
	maskVerts := make([]uint64, full+1)
	edgeVerts := make([]uint64, len(q.Edges))
	for i := range q.Edges {
		edgeVerts[i] = vertMask(q, []int{i})
	}
	for m := uint32(1); m <= full; m++ {
		low := uint32(bits.TrailingZeros32(m))
		maskVerts[m] = maskVerts[m&(m-1)] | edgeVerts[low]
	}

	// Query edge lists per mask for extFactor (masks are small).
	maskEdges := func(mask uint32) []int {
		var out []int
		for mask != 0 {
			low := bits.TrailingZeros32(mask)
			out = append(out, low)
			mask &= mask - 1
		}
		return out
	}

	states := make([][]dpState, full+1)
	states[0] = []dpState{{prefFreq: math.Inf(1), selProd: 1, primIdx: -1}}

	push := func(mask uint32, s dpState) {
		bucket := states[mask]
		for _, old := range bucket {
			if old.dominates(s) {
				return
			}
		}
		kept := bucket[:0]
		for _, old := range bucket {
			if !s.dominates(old) {
				kept = append(kept, old)
			}
		}
		states[mask] = append(kept, s)
	}

	for mask := uint32(0); mask < full; mask++ {
		bucket := states[mask]
		if len(bucket) == 0 {
			continue
		}
		prefix := maskEdges(mask)
		// extFactor depends only on (mask, primitive): hoist it out of
		// the per-state loop.
		exts := make([]float64, len(prims))
		for pi, pr := range prims {
			if pr.mask&mask != 0 {
				exts[pi] = -1
				continue
			}
			if mask != 0 && requireFrontier && pr.verts&maskVerts[mask] == 0 {
				exts[pi] = -1
				continue
			}
			if mask != 0 {
				exts[pi] = p.extFactor(q, prefix, pr)
			}
		}
		for si, st := range bucket {
			for pi, pr := range prims {
				if exts[pi] < 0 {
					continue
				}
				var cs chainState
				if mask == 0 {
					cs = p.startChain(pr)
				} else {
					cs = p.extendChain(chainState{
						work: st.work, space: st.space,
						prefFreq: st.prefFreq, selProd: st.selProd,
					}, pr, len(prefix), exts[pi], n)
				}
				push(mask|pr.mask, dpState{
					work: cs.work, space: cs.space,
					prefFreq: cs.prefFreq, selProd: cs.selProd,
					primIdx: pi, prevMask: mask, prevState: si,
				})
			}
		}
	}

	finals := states[full]
	if len(finals) == 0 {
		return nil, Score{}, fmt.Errorf("plan: no valid decomposition found")
	}
	bestIdx, bestObj := -1, math.Inf(1)
	for i, st := range finals {
		obj := p.objective(Score{Work: st.work, Space: st.space, ExpectedSel: st.selProd})
		if obj < bestObj {
			bestIdx, bestObj = i, obj
		}
	}
	best := finals[bestIdx]
	score := Score{Work: best.work, Space: best.space, ExpectedSel: best.selProd}

	// Reconstruct the leaf order by walking the parent chain.
	var rev [][]int
	mask, st := full, best
	for st.primIdx >= 0 {
		rev = append(rev, append([]int(nil), prims[st.primIdx].Edges...))
		mask, st = st.prevMask, states[st.prevMask][st.prevState]
	}
	_ = mask
	leaves := make([][]int, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		leaves = append(leaves, rev[i])
	}
	return leaves, score, nil
}
