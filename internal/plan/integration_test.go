package plan

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"streamgraph/internal/core"
	"streamgraph/internal/datagen"
	"streamgraph/internal/iso"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

// matchSet canonicalizes a match list for cross-strategy comparison.
func matchSet(eng *core.Engine, ms []iso.Match) map[string]bool {
	out := make(map[string]bool)
	for _, m := range ms {
		g := eng.Graph()
		sig := ""
		for qe, de := range m.EdgeOf {
			e, ok := g.Edge(de)
			if !ok {
				continue
			}
			sig += fmt.Sprintf("%d:%s>%s@%d;", qe, g.VertexName(e.Src), g.VertexName(e.Dst), e.TS)
		}
		out[sig] = true
	}
	return out
}

func runWithLeaves(t *testing.T, q *query.Graph, leaves [][]int, c *selectivity.Collector, edges []stream.Edge, strategy core.Strategy) map[string]bool {
	t.Helper()
	cfg := core.Config{Strategy: strategy, Stats: c}
	if leaves != nil {
		cfg.Leaves = leaves
	}
	eng, err := core.New(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := make(map[string]bool)
	for _, e := range edges {
		for sig := range matchSet(eng, eng.ProcessEdge(e)) {
			all[sig] = true
		}
	}
	return all
}

func TestOptimalLeavesMatchReferenceStrategy(t *testing.T) {
	edges := datagen.Netflow(datagen.NetflowConfig{Edges: 4000, Hosts: 120, Seed: 31})
	c := selectivity.NewCollector()
	c.AddAll(edges)
	p := &Planner{Stats: c, AvgDegree: 6}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 6; i++ {
		q := datagen.RandomPathQuery(rng, datagen.NetflowProtocols, 3, "ip")
		leaves, _, err := p.Optimal(q)
		if err != nil {
			t.Fatal(err)
		}
		want := runWithLeaves(t, q, nil, c, edges, core.StrategySingle)
		got := runWithLeaves(t, q, leaves, c, edges, core.StrategySingleLazy)
		if len(want) != len(got) {
			t.Fatalf("query %d (%v): planner leaves found %d matches, reference %d",
				i, leaves, len(got), len(want))
		}
		for sig := range want {
			if !got[sig] {
				t.Fatalf("query %d: match %q missing under planner leaves", i, sig)
			}
		}
	}
}

// triangleStream builds a deterministic stream containing numTriangles
// directed A->B->C->A triangles plus background noise edges.
func triangleStream(numTriangles, noise int) []stream.Edge {
	var out []stream.Edge
	ts := int64(0)
	for i := 0; i < numTriangles; i++ {
		a, b, c := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i), fmt.Sprintf("c%d", i)
		ts++
		out = append(out, stream.Edge{Src: a, SrcLabel: "ip", Dst: b, DstLabel: "ip", Type: "TCP", TS: ts})
		ts++
		out = append(out, stream.Edge{Src: b, SrcLabel: "ip", Dst: c, DstLabel: "ip", Type: "UDP", TS: ts})
		ts++
		out = append(out, stream.Edge{Src: c, SrcLabel: "ip", Dst: a, DstLabel: "ip", Type: "ICMP", TS: ts})
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < noise; i++ {
		ts++
		out = append(out, stream.Edge{
			Src: fmt.Sprintf("n%d", rng.Intn(50)), SrcLabel: "ip",
			Dst: fmt.Sprintf("n%d", rng.Intn(50)), DstLabel: "ip",
			Type: "TCP", TS: ts,
		})
	}
	return out
}

func triangleQuery() *query.Graph {
	q := &query.Graph{}
	a := q.AddVertex("a", "ip")
	b := q.AddVertex("b", "ip")
	c := q.AddVertex("c", "ip")
	q.AddEdge(a, b, "TCP")
	q.AddEdge(b, c, "UDP")
	q.AddEdge(c, a, "ICMP")
	return q
}

func TestTriangleLeafEndToEnd(t *testing.T) {
	edges := triangleStream(7, 200)
	c := selectivity.NewCollector()
	c.AddAll(edges)
	q := triangleQuery()

	// Reference: single-edge decomposition.
	want := runWithLeaves(t, q, nil, c, edges, core.StrategySingle)
	if len(want) != 7 {
		t.Fatalf("reference found %d triangle matches, want 7", len(want))
	}

	// A single 3-edge triangle leaf: the whole query matched atomically.
	got := runWithLeaves(t, q, [][]int{{0, 1, 2}}, c, edges, core.StrategySingle)
	if len(got) != len(want) {
		t.Fatalf("triangle leaf found %d matches, want %d", len(got), len(want))
	}
	for sig := range want {
		if !got[sig] {
			t.Fatalf("triangle leaf missing match %q", sig)
		}
	}
}

func TestTriangleWithTailQueryViaPlanner(t *testing.T) {
	// Triangle plus an outgoing tail edge; the planner (with triangle
	// stats) may choose a triangle leaf, and the engine must still agree
	// with the reference strategy.
	edges := triangleStream(5, 150)
	// Attach a GRE tail to two of the triangles.
	last := edges[len(edges)-1].TS
	for i := 0; i < 2; i++ {
		last++
		edges = append(edges, stream.Edge{
			Src: fmt.Sprintf("a%d", i), SrcLabel: "ip",
			Dst: fmt.Sprintf("t%d", i), DstLabel: "ip",
			Type: "GRE", TS: last,
		})
	}
	c := selectivity.NewCollector()
	c.AddAll(edges)

	q := triangleQuery()
	d := q.AddVertex("d", "ip")
	q.AddEdge(0, d, "GRE") // a -> d tail

	p := &Planner{Stats: c, AvgDegree: 6, Triangles: &TriangleInfo{Triangles: 5, Wedges: 500}}
	leaves, _, err := p.Optimal(q)
	if err != nil {
		t.Fatal(err)
	}
	hasTriangleLeaf := false
	for _, leaf := range leaves {
		if len(leaf) == 3 {
			hasTriangleLeaf = true
		}
	}
	if !hasTriangleLeaf {
		t.Logf("planner chose %v (no triangle leaf); still validating execution", leaves)
	}

	want := runWithLeaves(t, q, nil, c, edges, core.StrategySingle)
	got := runWithLeaves(t, q, leaves, c, edges, core.StrategySingleLazy)
	if len(want) != 2 {
		t.Fatalf("reference found %d matches, want 2", len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("planner leaves found %d matches, want %d (leaves=%v)", len(got), len(want), leaves)
	}

	// Force the triangle-first decomposition explicitly as well.
	forced := [][]int{{0, 1, 2}, {3}}
	sort.Ints(forced[0])
	got2 := runWithLeaves(t, q, forced, c, edges, core.StrategySingleLazy)
	if len(got2) != len(want) {
		t.Fatalf("forced triangle leaf found %d matches, want %d", len(got2), len(want))
	}
}
