package streamgraph

import (
	"io"

	"streamgraph/internal/persist"
)

// SaveSnapshot checkpoints a running engine to w: the windowed data
// graph, every tracked partial match and the lazy-search state. Deferred
// lazy work is flushed first; any complete matches it produces are
// returned so the caller can report them before shutting down.
//
// A snapshot taken mid-stream and restored with LoadSnapshot continues
// the query without losing any in-window partial match.
func SaveSnapshot(w io.Writer, e *Engine) (flushed []Match, err error) {
	raw, err := persist.Save(w, e.inner)
	if err != nil {
		return nil, err
	}
	out := make([]Match, 0, len(raw))
	for _, m := range raw {
		out = append(out, e.resolve(m))
	}
	return out, nil
}

// LoadSnapshot restores an engine previously saved with SaveSnapshot.
// The restored engine uses the decomposition pinned at save time; it
// does not need the original Statistics.
func LoadSnapshot(r io.Reader) (*Engine, error) {
	inner, err := persist.Load(r)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner, q: inner.Query()}, nil
}
