module streamgraph

go 1.24
