package streamgraph

import (
	"fmt"

	"streamgraph/internal/plan"
)

// Optimizer selects how the query decomposition (the SJ-Tree leaf set
// and order) is computed.
type Optimizer int

const (
	// Greedy is the paper's Algorithm 4: repeatedly remove the most
	// selective 1-edge or 2-edge primitive touching the frontier. The
	// default.
	Greedy Optimizer = iota
	// Exact searches every valid (partition, order) pair with a dynamic
	// program and picks the one minimizing the analytical cost model.
	// Limited to queries of at most 14 edges.
	Exact
	// Genetic runs a seeded genetic search over valid decompositions —
	// for queries too large for Exact.
	Genetic
)

// PlanChoice reports an optimizer's chosen decomposition and its
// predicted cost.
type PlanChoice struct {
	// Leaves lists the SJ-Tree leaves in join order; each entry holds
	// query edge indices.
	Leaves [][]int
	// PredictedWork is the modeled average work per incoming edge.
	PredictedWork float64
	// PredictedSpace is the modeled stored-match footprint S(T).
	PredictedSpace float64
	// ExpectedSelectivity is Ŝ(T), the product of leaf selectivities.
	ExpectedSelectivity float64
}

// Optimize computes a cost-based decomposition for q under the given
// statistics. The result's Leaves can be passed through
// Options.Decomposition to pin an engine to the plan.
func Optimize(q *Query, stats *Statistics, opt Optimizer) (PlanChoice, error) {
	if stats == nil {
		return PlanChoice{}, fmt.Errorf("streamgraph: Optimize requires Statistics")
	}
	p := &plan.Planner{Stats: stats.c, AvgDegree: stats.c.AvgDegreeEstimate()}
	var (
		leaves [][]int
		score  plan.Score
		err    error
	)
	switch opt {
	case Exact:
		leaves, score, err = p.Optimal(q)
	case Genetic:
		leaves, score, err = p.Genetic(q, plan.GeneticConfig{})
	case Greedy:
		return PlanChoice{}, fmt.Errorf("streamgraph: Greedy is the engine default; construct the engine without a Decomposition instead")
	default:
		return PlanChoice{}, fmt.Errorf("streamgraph: unknown optimizer %d", int(opt))
	}
	if err != nil {
		return PlanChoice{}, err
	}
	return PlanChoice{
		Leaves:              leaves,
		PredictedWork:       score.Work,
		PredictedSpace:      score.Space,
		ExpectedSelectivity: score.ExpectedSel,
	}, nil
}
