// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus
// micro-benchmarks of the hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks execute a scaled-down sweep per iteration and
// report the paper's headline quantities as custom metrics; sgbench
// runs the same experiments at larger scales.
package streamgraph

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"streamgraph/internal/core"
	"streamgraph/internal/datagen"
	"streamgraph/internal/experiments"
	"streamgraph/internal/graph"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/stream"
)

// benchScale keeps each figure benchmark iteration under a few seconds.
var benchScale = experiments.Scale{
	NetflowEdges: 12000, NetflowHosts: 2500,
	LSBenchEdges: 12000, LSBenchUsers: 1200,
	NYTArticles: 1200,
}

var (
	benchOnce sync.Once
	benchNF   experiments.Dataset
	benchLS   experiments.Dataset
	benchNYT  experiments.Dataset
)

func benchDatasets() (experiments.Dataset, experiments.Dataset, experiments.Dataset) {
	benchOnce.Do(func() {
		benchNF = experiments.NetflowDataset(benchScale, 1)
		benchLS = experiments.LSBenchDataset(benchScale, 2)
		benchNYT = experiments.NYTimesDataset(benchScale, 3)
	})
	return benchNF, benchLS, benchNYT
}

// BenchmarkTable1 regenerates the dataset summary (Table 1).
func BenchmarkTable1(b *testing.B) {
	nf, ls, nyt := benchDatasets()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1([]experiments.Dataset{nf, ls, nyt})
		if len(rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFigure6 regenerates the edge-type-over-time histograms for
// all three datasets (Figure 6a-c).
func BenchmarkFigure6(b *testing.B) {
	nf, ls, nyt := benchDatasets()
	for i := 0; i < b.N; i++ {
		for _, ds := range []experiments.Dataset{nyt, nf, ls} {
			if cells := experiments.Figure6(ds, 10); len(cells) == 0 {
				b.Fatal("no cells")
			}
		}
	}
}

// BenchmarkFigure7 regenerates the 2-edge path distributions (Figure 7)
// and reports the netflow skew.
func BenchmarkFigure7(b *testing.B) {
	nf, ls, nyt := benchDatasets()
	var skew float64
	for i := 0; i < b.N; i++ {
		for _, ds := range []experiments.Dataset{nyt, nf, ls} {
			r := experiments.Figure7(ds)
			if ds.Name == "Netflow" {
				skew = r.SkewRatio
			}
		}
	}
	b.ReportMetric(skew, "netflow-skew")
}

func sweepBench(b *testing.B, ds experiments.Dataset, class experiments.QueryClass, sizes []int, seed int64) {
	cfg := experiments.SweepConfig{
		Dataset: ds, Class: class, Sizes: sizes,
		QueriesPerGroup: 2, Seed: seed,
		MaxEdges: len(ds.Edges) / 2, MaxEdgesVF2: len(ds.Edges) / 8,
	}
	var rows []experiments.RunResult
	for i := 0; i < b.N; i++ {
		rows = experiments.RunSweep(cfg)
	}
	// Report the headline ratio: baseline / best lazy at the largest size.
	sp := experiments.Speedups(rows)
	if m, ok := sp[sizes[len(sizes)-1]]; ok {
		if v, ok := m["VF2"]; ok {
			b.ReportMetric(v, "vf2-over-lazy")
		}
		if v, ok := m["Single"]; ok {
			b.ReportMetric(v, "single-over-lazy")
		}
	}
}

// BenchmarkFigure9a: path queries on the netflow stream.
func BenchmarkFigure9a(b *testing.B) {
	nf, _, _ := benchDatasets()
	sweepBench(b, nf, experiments.ClassPath, []int{3, 4}, 10)
}

// BenchmarkFigure9b: binary tree queries on the netflow stream.
func BenchmarkFigure9b(b *testing.B) {
	nf, _, _ := benchDatasets()
	sweepBench(b, nf, experiments.ClassBinaryTree, []int{5, 7}, 11)
}

// BenchmarkFigure9c: path queries on the LSBench stream.
func BenchmarkFigure9c(b *testing.B) {
	_, ls, _ := benchDatasets()
	sweepBench(b, ls, experiments.ClassPath, []int{3, 4}, 12)
}

// BenchmarkFigure9d: schema tree queries on the LSBench stream.
func BenchmarkFigure9d(b *testing.B) {
	_, ls, _ := benchDatasets()
	sweepBench(b, ls, experiments.ClassSchemaTree, []int{3, 5}, 13)
}

// BenchmarkFigure10 regenerates the relative-selectivity distribution.
func BenchmarkFigure10(b *testing.B) {
	nf, ls, nyt := benchDatasets()
	var n int
	for i := 0; i < b.N; i++ {
		samples := experiments.Figure10([]experiments.Dataset{nyt, nf, ls}, 10, 14)
		n = len(samples)
	}
	b.ReportMetric(float64(n), "xi-samples")
}

// BenchmarkAlgorithm5 times the batch 2-edge path statistics
// (Section 5.1's "50 seconds for 130M edges" claim — we report
// edges/second).
func BenchmarkAlgorithm5(b *testing.B) {
	nf, _, _ := benchDatasets()
	var eps float64
	for i := 0; i < b.N; i++ {
		r := experiments.TimeAlgorithm5(nf)
		eps = r.EdgesPerSec
	}
	b.ReportMetric(eps, "edges/s")
}

// BenchmarkLeafOrderAblation compares peak partial-match storage across
// SJ-Tree leaf orders (Theorem 2).
func BenchmarkLeafOrderAblation(b *testing.B) {
	nf, _, _ := benchDatasets()
	q := query.NewPath(query.Wildcard, "GRE", "TCP", "TCP")
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.LeafOrderAblation(nf, q, 17)
		if err != nil {
			b.Fatal(err)
		}
		byName := map[string]int64{}
		for _, r := range rows {
			byName[r.Order] = r.PeakStored
		}
		if a := byName["ascending-selectivity"]; a > 0 {
			ratio = float64(byName["descending-selectivity"]) / float64(a)
		}
	}
	b.ReportMetric(ratio, "desc-over-asc-storage")
}

// --- Micro-benchmarks of the hot paths ----------------------------------

// BenchmarkEngineProcessEdge measures steady-state stream throughput
// for each strategy on a 3-hop netflow path query.
func BenchmarkEngineProcessEdge(b *testing.B) {
	nf, _, _ := benchDatasets()
	stats := experiments.CollectPrefix(nf, 0.2)
	q := query.NewPath(query.Wildcard, "UDP", "ICMP", "GRE")
	for _, strat := range []core.Strategy{
		core.StrategySingle, core.StrategySingleLazy,
		core.StrategyPath, core.StrategyPathLazy, core.StrategyIncIso,
	} {
		b.Run(strat.String(), func(b *testing.B) {
			eng, err := core.New(q, core.Config{
				Strategy: strat, Window: 2000, Stats: stats,
				MaxMatchesPerSearch: 20000,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.ProcessEdge(nf.Edges[i%len(nf.Edges)])
			}
		})
	}
}

// cyclicStream returns n edges by repeating base with timestamps
// shifted so the stream stays monotonic across repetitions.
func cyclicStream(base []stream.Edge, n int) []stream.Edge {
	out := make([]stream.Edge, n)
	span := base[len(base)-1].TS + 1
	for i := range out {
		e := base[i%len(base)]
		e.TS += span * int64(i/len(base))
		out[i] = e
	}
	return out
}

// BenchmarkProcessBatch measures the batch ingestion pipeline against
// the serial loop: the same netflow stream is driven through each
// strategy at batch sizes 1, 64 and 1024. batch=1 uses ProcessEdge (the
// serial baseline); larger batches amortize eviction and fan the
// candidate searches out over the worker pool. Match sets are identical
// across rows (the differential tests enforce it), so edges/s isolates
// the ingestion mechanics.
func BenchmarkProcessBatch(b *testing.B) {
	nf, _, _ := benchDatasets()
	stats := experiments.CollectPrefix(nf, 0.2)
	q := query.NewPath(query.Wildcard, "UDP", "ICMP", "GRE")
	for _, strat := range []core.Strategy{
		core.StrategySingle, core.StrategySingleLazy,
		core.StrategyPath, core.StrategyPathLazy,
	} {
		for _, batch := range []int{1, 64, 1024} {
			b.Run(fmt.Sprintf("%s/batch=%d", strat, batch), func(b *testing.B) {
				eng, err := core.New(q, core.Config{
					Strategy: strat, Window: 2000, Stats: stats,
					MaxMatchesPerSearch: 20000,
				})
				if err != nil {
					b.Fatal(err)
				}
				edges := cyclicStream(nf.Edges, b.N)
				var matches int64
				b.ReportAllocs()
				b.ResetTimer()
				if batch == 1 {
					for _, se := range edges {
						matches += int64(len(eng.ProcessEdge(se)))
					}
				} else {
					for chunk := range slices.Chunk(edges, batch) {
						for _, ms := range eng.ProcessBatch(chunk) {
							matches += int64(len(ms))
						}
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "edges/s")
				b.ReportMetric(float64(matches), "matches")
			})
		}
	}
}

// BenchmarkProcessBatchMulti drives several concurrent queries through
// ParallelMulti.ProcessBatch at batch sizes 1 and 256, exercising the
// across-query worker pool on the shared graph.
func BenchmarkProcessBatchMulti(b *testing.B) {
	nf, _, _ := benchDatasets()
	queries := map[string]*query.Graph{
		"q1": query.NewPath(query.Wildcard, "UDP", "ICMP"),
		"q2": query.NewPath(query.Wildcard, "GRE", "TCP"),
		"q3": query.NewPath("ip", "TCP", "UDP"),
	}
	for _, batch := range []int{1, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			p := core.NewParallelMulti(core.MultiConfig{Window: 2000}, 0)
			defer p.Close()
			stats := experiments.CollectPrefix(nf, 0.2)
			for _, name := range []string{"q1", "q2", "q3"} {
				if err := p.Register(name, queries[name], core.Config{
					Strategy: core.StrategySingleLazy, Stats: stats,
					MaxMatchesPerSearch: 20000,
				}); err != nil {
					b.Fatal(err)
				}
			}
			edges := cyclicStream(nf.Edges, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for chunk := range slices.Chunk(edges, batch) {
				if batch == 1 {
					p.ProcessEdge(chunk[0])
				} else {
					p.ProcessBatch(chunk)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}

// BenchmarkGraphAddEdge measures raw graph mutation throughput.
func BenchmarkGraphAddEdge(b *testing.B) {
	nf, _, _ := benchDatasets()
	b.Run("add", func(b *testing.B) {
		g := graph.New()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := nf.Edges[i%len(nf.Edges)]
			g.AddEdgeNamed(e.Src, e.SrcLabel, e.Dst, e.DstLabel, e.Type, e.TS)
		}
	})
	b.Run("add-expire", func(b *testing.B) {
		g := graph.New()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := nf.Edges[i%len(nf.Edges)]
			g.AddEdgeNamed(e.Src, e.SrcLabel, e.Dst, e.DstLabel, e.Type, int64(i))
			if i%256 == 0 {
				g.ExpireBefore(int64(i) - 2000)
			}
		}
	})
}

// BenchmarkCollectorAdd measures the incremental Algorithm 5 update.
func BenchmarkCollectorAdd(b *testing.B) {
	nf, _, _ := benchDatasets()
	c := selectivity.NewCollector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(nf.Edges[i%len(nf.Edges)])
	}
}

// BenchmarkQueryGeneration measures the filtered query generators used
// by the sweeps.
func BenchmarkQueryGeneration(b *testing.B) {
	nf, ls, _ := benchDatasets()
	statsNF := experiments.Collect(nf)
	statsLS := experiments.Collect(ls)
	rng := rand.New(rand.NewSource(9))
	b.Run("netflow-path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			datagen.GeneratePathQueries(rng, nf.Types, 4, 5, statsNF)
		}
	})
	b.Run("lsbench-stree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			datagen.GenerateSchemaTreeQueries(rng, ls.Schema, 4, 5, statsLS)
		}
	})
}
