package streamgraph

// The docs link check: every intra-repository markdown link in
// README.md and docs/*.md must resolve to an existing file or
// directory, and docs/CLI.md must document every cmd/* tool. Runs as
// a plain test and in CI's docs job.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestDocsLinksResolve(t *testing.T) {
	files := []string{"README.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("no docs/*.md files found — the architecture docs are missing")
	}
	files = append(files, docs...)

	var broken []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		base := filepath.Dir(file)
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// Strip an intra-file anchor from a relative link.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(base, target)); err != nil {
				broken = append(broken, file+": "+m[1])
			}
		}
	}
	if len(broken) > 0 {
		t.Errorf("%d broken intra-repo links:\n  %s", len(broken), strings.Join(broken, "\n  "))
	}
}

// TestCLIDocCoversAllCommands requires docs/CLI.md to carry a
// "## <name> — ..." section for every directory under cmd/, so a new
// tool cannot land undocumented.
func TestCLIDocCoversAllCommands(t *testing.T) {
	data, err := os.ReadFile("docs/CLI.md")
	if err != nil {
		t.Fatalf("docs/CLI.md missing: %v", err)
	}
	entries, err := os.ReadDir("cmd")
	if err != nil {
		t.Fatal(err)
	}
	var missing []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if !strings.Contains(string(data), fmt.Sprintf("## %s ", e.Name())) {
			missing = append(missing, e.Name())
		}
	}
	if len(missing) > 0 {
		t.Errorf("docs/CLI.md lacks a section for: %s", strings.Join(missing, ", "))
	}
}
