package streamgraph

import (
	"testing"
)

func TestMonitorEndToEnd(t *testing.T) {
	mon := NewMonitor(MonitorOptions{Window: 100})

	// Warm statistics.
	for i, tp := range []string{"rdp", "ftp", "http", "http"} {
		mon.Process(Edge{
			Src: "w", SrcLabel: "ip", Dst: "u", DstLabel: "ip",
			Type: tp, TS: int64(i + 1),
		})
	}

	q1, _ := ParseQuery("e a b rdp\ne b c ftp\n")
	q2, _ := ParseQuery("e x y http\n")
	if err := mon.Register("lateral", q1, Auto); err != nil {
		t.Fatal(err)
	}
	if err := mon.Register("web", q2, Single); err != nil {
		t.Fatal(err)
	}
	if err := mon.Register("lateral", q1, Auto); err == nil {
		t.Fatalf("duplicate registration accepted")
	}
	if got := mon.Registered(); len(got) != 2 {
		t.Fatalf("Registered = %v", got)
	}

	live := []Edge{
		{Src: "m", SrcLabel: "ip", Dst: "n", DstLabel: "ip", Type: "rdp", TS: 10},
		{Src: "n", SrcLabel: "ip", Dst: "o", DstLabel: "ip", Type: "ftp", TS: 11},
		{Src: "p", SrcLabel: "ip", Dst: "q", DstLabel: "ip", Type: "http", TS: 12},
	}
	counts := map[string]int{}
	for _, e := range live {
		for _, qm := range mon.Process(e) {
			counts[qm.Query]++
			if len(qm.Match.Bindings) == 0 {
				t.Errorf("match without bindings: %+v", qm)
			}
		}
	}
	if counts["lateral"] != 1 || counts["web"] != 1 {
		t.Fatalf("counts = %v, want lateral:1 web:1", counts)
	}

	mon.Unregister("web")
	got := mon.Process(Edge{Src: "r", SrcLabel: "ip", Dst: "s", DstLabel: "ip", Type: "http", TS: 13})
	if len(got) != 0 {
		t.Fatalf("unregistered query still firing: %v", got)
	}
}

func TestMonitorBackfill(t *testing.T) {
	mon := NewMonitor(MonitorOptions{Window: 100})
	mon.Process(Edge{Src: "a", SrcLabel: "ip", Dst: "b", DstLabel: "ip", Type: "x", TS: 1})
	mon.Process(Edge{Src: "b", SrcLabel: "ip", Dst: "c", DstLabel: "ip", Type: "y", TS: 2})

	q, _ := ParseQuery("e u v x\ne v w y\n")
	initial, err := mon.RegisterWithBackfill("late", q, Single)
	if err != nil {
		t.Fatal(err)
	}
	if len(initial) != 1 {
		t.Fatalf("backfill found %d matches, want 1", len(initial))
	}
	if initial[0].Query != "late" || len(initial[0].Match.Edges) != 2 {
		t.Fatalf("bad backfill match: %+v", initial[0])
	}
}
