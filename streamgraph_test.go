package streamgraph

import (
	"strings"
	"testing"
)

func trainingEdges() []Edge {
	return []Edge{
		{Src: "a", SrcLabel: "ip", Dst: "b", DstLabel: "ip", Type: "http", TS: 1},
		{Src: "b", SrcLabel: "ip", Dst: "c", DstLabel: "ip", Type: "http", TS: 2},
		{Src: "c", SrcLabel: "ip", Dst: "d", DstLabel: "ip", Type: "rdp", TS: 3},
		{Src: "d", SrcLabel: "ip", Dst: "e", DstLabel: "ip", Type: "ftp", TS: 4},
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	q, err := ParseQuery("e x y rdp\ne y z ftp\n")
	if err != nil {
		t.Fatal(err)
	}
	stats := NewStatistics()
	stats.ObserveAll(trainingEdges())
	if stats.Edges() != 4 {
		t.Errorf("observed %d edges", stats.Edges())
	}
	if s := stats.EdgeSelectivity("http"); s != 0.5 {
		t.Errorf("S(http) = %v", s)
	}

	eng, err := NewEngine(q, Options{Strategy: Auto, Window: 100, Statistics: stats})
	if err != nil {
		t.Fatal(err)
	}
	if d := eng.Decomposition(); !strings.Contains(d, "rdp") {
		t.Errorf("Decomposition = %q", d)
	}

	live := []Edge{
		{Src: "m", SrcLabel: "ip", Dst: "n", DstLabel: "ip", Type: "rdp", TS: 10},
		{Src: "n", SrcLabel: "ip", Dst: "o", DstLabel: "ip", Type: "ftp", TS: 11},
	}
	var matches []Match
	for _, e := range live {
		matches = append(matches, eng.Process(e)...)
	}
	if len(matches) != 1 {
		t.Fatalf("matches = %d, want 1", len(matches))
	}
	m := matches[0]
	if len(m.Bindings) != 3 || len(m.Edges) != 2 {
		t.Fatalf("match shape: %+v", m)
	}
	if m.FirstTS != 10 || m.LastTS != 11 {
		t.Errorf("τ(g) = [%d, %d]", m.FirstTS, m.LastTS)
	}
	s := m.String()
	if !strings.Contains(s, "x=m") || !strings.Contains(s, "z=o") {
		t.Errorf("String = %q", s)
	}
	st := eng.Stats()
	if st.CompleteMatches != 1 || st.EdgesProcessed != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFacadePathQuery(t *testing.T) {
	q := PathQuery(Wildcard, "a", "b")
	if len(q.Edges) != 2 {
		t.Fatalf("PathQuery edges = %d", len(q.Edges))
	}
}

func TestFacadeRelativeSelectivity(t *testing.T) {
	stats := NewStatistics()
	stats.ObserveAll(trainingEdges())
	q := PathQuery(Wildcard, "http", "rdp")
	xi, ok := stats.RelativeSelectivity(q)
	if !ok || xi <= 0 {
		t.Fatalf("xi=%v ok=%v", xi, ok)
	}
	// Unseen type: undefined.
	if _, ok := stats.RelativeSelectivity(PathQuery(Wildcard, "ghost", "rdp")); ok {
		t.Errorf("unseen type should be undefined")
	}
}

func TestFacadeVF2NeedsNoStats(t *testing.T) {
	q := PathQuery(Wildcard, "rdp")
	eng, err := NewEngine(q, Options{Strategy: VF2})
	if err != nil {
		t.Fatal(err)
	}
	if d := eng.Decomposition(); !strings.Contains(d, "baseline") {
		t.Errorf("Decomposition = %q", d)
	}
	got := eng.Process(Edge{Src: "a", SrcLabel: "ip", Dst: "b", DstLabel: "ip", Type: "rdp", TS: 1})
	if len(got) != 1 {
		t.Fatalf("VF2 matches = %d", len(got))
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := ParseQuery("garbage"); err == nil {
		t.Errorf("ParseQuery accepted garbage")
	}
	q := PathQuery(Wildcard, "a")
	if _, err := NewEngine(q, Options{Strategy: SingleLazy}); err == nil {
		t.Errorf("NewEngine accepted missing statistics")
	}
}
