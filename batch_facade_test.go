package streamgraph

import (
	"fmt"
	"sort"
	"testing"
)

// TestFacadeBatchMatchesSerial drives the public batch API: ProcessAll
// with a BatchSize must produce the same matches, in input order, as a
// serial Process loop; the same must hold for Monitor.ProcessBatch.
func TestFacadeBatchMatchesSerial(t *testing.T) {
	edges := facadeTrainingEdges(2000)
	stats := NewStatistics()
	stats.ObserveAll(edges[:400])
	q := facadeQuery(t)

	run := func(batchSize, workers int) []string {
		eng, err := NewEngine(q, Options{
			Strategy: SingleLazy, Window: 200, Statistics: stats,
			BatchSize: batchSize, BatchWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sigs []string
		for _, m := range eng.ProcessAll(edges) {
			sigs = append(sigs, m.String())
		}
		sort.Strings(sigs) // canonical multiset; see comment below
		return sigs
	}

	want := run(0, 0) // serial
	if len(want) == 0 {
		t.Fatal("no matches; comparison is vacuous")
	}
	for _, bs := range []int{1, 10, 256} {
		for _, workers := range []int{1, 4} {
			got := run(bs, workers)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("BatchSize=%d workers=%d: %d matches, want %d (or order differs)",
					bs, workers, len(got), len(want))
			}
		}
	}

	// Engine.ProcessBatch on an explicit slice equals the same edges
	// processed one at a time.
	serial, err := NewEngine(q, Options{Strategy: Path, Window: 200, Statistics: stats})
	if err != nil {
		t.Fatal(err)
	}
	var fromSerial []string
	for _, se := range edges {
		for _, m := range serial.Process(se) {
			fromSerial = append(fromSerial, m.String())
		}
	}
	batched, err := NewEngine(q, Options{Strategy: Path, Window: 200, Statistics: stats})
	if err != nil {
		t.Fatal(err)
	}
	var fromBatch []string
	for lo := 0; lo < len(edges); lo += 128 {
		hi := lo + 128
		if hi > len(edges) {
			hi = len(edges)
		}
		for _, m := range batched.ProcessBatch(edges[lo:hi]) {
			fromBatch = append(fromBatch, m.String())
		}
	}
	// Within one edge's match set the enumeration order may differ
	// (eviction swap-deletes permute adjacency lists); the per-edge SET
	// equality is enforced by the core differential tests, so compare
	// the canonical multiset here.
	sort.Strings(fromBatch)
	sort.Strings(fromSerial)
	if fmt.Sprint(fromBatch) != fmt.Sprint(fromSerial) {
		t.Fatalf("ProcessBatch: %d matches, serial %d", len(fromBatch), len(fromSerial))
	}
}

func TestMonitorProcessBatch(t *testing.T) {
	build := func() *Monitor {
		mon := NewMonitor(MonitorOptions{Window: 300})
		q1, _ := ParseQuery("e a b rdp\ne b c ftp\n")
		q2, _ := ParseQuery("e x y http\n")
		if err := mon.Register("lateral", q1, Single); err != nil {
			t.Fatal(err)
		}
		if err := mon.Register("web", q2, Single); err != nil {
			t.Fatal(err)
		}
		return mon
	}
	edges := facadeTrainingEdges(1500)

	serialMon := build()
	var want []string
	for _, se := range edges {
		for _, qm := range serialMon.Process(se) {
			want = append(want, qm.Query+"|"+qm.Match.String())
		}
	}
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("no matches; comparison is vacuous")
	}

	batchMon := build()
	var got []string
	for lo := 0; lo < len(edges); lo += 200 {
		hi := lo + 200
		if hi > len(edges) {
			hi = len(edges)
		}
		for _, qm := range batchMon.ProcessBatch(edges[lo:hi]) {
			got = append(got, qm.Query+"|"+qm.Match.String())
		}
	}
	sort.Strings(got)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Monitor.ProcessBatch multiset differs: %d vs %d matches", len(got), len(want))
	}
}
