// Ablation benchmarks for the extensions beyond the paper's core:
// sketch-based statistics vs the exact collector, cost-based planning
// vs the greedy decomposition, triangle primitives, parallel multi-query
// scaling, snapshot round-trips, and the ingest/predicate hot paths.
package streamgraph

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"

	"streamgraph/internal/attr"
	"streamgraph/internal/core"
	"streamgraph/internal/datagen"
	"streamgraph/internal/experiments"
	"streamgraph/internal/ingest"
	"streamgraph/internal/metrics"
	"streamgraph/internal/persist"
	"streamgraph/internal/plan"
	"streamgraph/internal/query"
	"streamgraph/internal/selectivity"
	"streamgraph/internal/sketch"
	"streamgraph/internal/stream"
)

// BenchmarkStatisticsBackends compares the exact collector with the
// bounded-memory sketch estimator on the same stream: per-edge update
// cost and resident statistics footprint.
func BenchmarkStatisticsBackends(b *testing.B) {
	nf, _, _ := benchDatasets()
	b.Run("exact", func(b *testing.B) {
		c := selectivity.NewCollector()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Add(nf.Edges[i%len(nf.Edges)])
		}
	})
	b.Run("sketch", func(b *testing.B) {
		est := sketch.NewEstimator(1<<16, 4, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			est.Add(nf.Edges[i%len(nf.Edges)])
		}
		b.ReportMetric(float64(est.MemoryBytes()), "stats-bytes")
	})
}

// BenchmarkPlannerAblation executes the same 5-hop query under the
// greedy 2-edge decomposition and the exact-DP plan, reporting the
// measured runtime ratio (greedy over DP) and each plan's peak stored
// partial matches. This is the experiment motivating the cost-based
// optimizer: the wedge-based join model predicts the storage blow-up
// the paper's min-frequency bound misses.
func BenchmarkPlannerAblation(b *testing.B) {
	edges := datagen.Netflow(datagen.NetflowConfig{Edges: 10000, Hosts: 1000, Seed: 21})
	c := selectivity.NewCollector()
	c.AddAll(edges[:4000])
	q := query.NewPath("ip", "TCP", "ESP", "UDP", "TCP", "ICMP")

	greedyEng, err := core.New(q, core.Config{Strategy: core.StrategyPathLazy, Stats: c})
	if err != nil {
		b.Fatal(err)
	}
	greedyLeaves := greedyEng.Tree().LeafSets()
	p := &plan.Planner{Stats: c, AvgDegree: c.AvgDegreeEstimate()}
	dpLeaves, _, err := p.Optimal(q)
	if err != nil {
		b.Fatal(err)
	}

	run := func(leaves [][]int) (time.Duration, int64) {
		eng, err := core.New(q, core.Config{Strategy: core.StrategySingleLazy, Leaves: leaves, Stats: c})
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		for _, e := range edges[4000:] {
			eng.ProcessEdge(e)
		}
		return time.Since(t0), eng.Stats().Tree.PeakStored
	}
	var ratio, dpStored, greedyStored float64
	for i := 0; i < b.N; i++ {
		gt, gs := run(greedyLeaves)
		dt, ds := run(dpLeaves)
		ratio = float64(gt) / float64(dt)
		greedyStored, dpStored = float64(gs), float64(ds)
	}
	b.ReportMetric(ratio, "greedy-over-dp-time")
	b.ReportMetric(greedyStored, "greedy-peak-stored")
	b.ReportMetric(dpStored, "dp-peak-stored")
}

// BenchmarkTrianglePrimitive compares matching a cyclic query with a
// single-edge decomposition against one atomic triangle leaf
// (Section 5.1's foreseen triangle primitives).
func BenchmarkTrianglePrimitive(b *testing.B) {
	var edges []stream.Edge
	ts := int64(0)
	for i := 0; i < 400; i++ {
		a, bb, cc := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i), fmt.Sprintf("c%d", i)
		ts++
		edges = append(edges, stream.Edge{Src: a, SrcLabel: "ip", Dst: bb, DstLabel: "ip", Type: "TCP", TS: ts})
		ts++
		edges = append(edges, stream.Edge{Src: bb, SrcLabel: "ip", Dst: cc, DstLabel: "ip", Type: "UDP", TS: ts})
		ts++
		edges = append(edges, stream.Edge{Src: cc, SrcLabel: "ip", Dst: a, DstLabel: "ip", Type: "ICMP", TS: ts})
	}
	noise := datagen.Netflow(datagen.NetflowConfig{Edges: 4000, Hosts: 300, Seed: 8})
	edges = append(edges, noise...)
	c := selectivity.NewCollector()
	c.AddAll(edges)

	q := &query.Graph{}
	v0 := q.AddVertex("a", "ip")
	v1 := q.AddVertex("b", "ip")
	v2 := q.AddVertex("c", "ip")
	q.AddEdge(v0, v1, "TCP")
	q.AddEdge(v1, v2, "UDP")
	q.AddEdge(v2, v0, "ICMP")

	for _, tc := range []struct {
		name   string
		leaves [][]int
	}{
		{"single-edges", [][]int{{0}, {1}, {2}}},
		{"triangle-leaf", [][]int{{0, 1, 2}}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var matches int64
			for i := 0; i < b.N; i++ {
				eng, err := core.New(q, core.Config{
					Strategy: core.StrategySingle, Leaves: tc.leaves, Stats: c,
				})
				if err != nil {
					b.Fatal(err)
				}
				matches = 0
				for _, e := range edges {
					matches += int64(len(eng.ProcessEdge(e)))
				}
				if matches == 0 {
					b.Fatal("no triangles found")
				}
				b.ReportMetric(float64(eng.Stats().Tree.PeakStored), "peak-stored")
			}
		})
	}
}

// BenchmarkParallelMultiScaling runs 8 concurrent continuous queries
// over one shared stream with 1, 2 and 4 workers. The queries are
// deliberately heavy (4-hop paths over the two dominant protocols) so
// that per-edge search work outweighs the fork/join synchronization;
// with cheap queries the serial MultiEngine wins — see EXPERIMENTS.md.
func BenchmarkParallelMultiScaling(b *testing.B) {
	edges := datagen.Netflow(datagen.NetflowConfig{Edges: 2500, Hosts: 150, Seed: 13})
	c := selectivity.NewCollector()
	c.AddAll(edges)
	var queries []*query.Graph
	protos := datagen.NetflowProtocols
	for i := 0; i < 8; i++ {
		queries = append(queries, query.NewPath("ip",
			protos[i%2], protos[(i+1)%2], protos[i%2], protos[(i/2)%2]))
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pm := core.NewParallelMulti(core.MultiConfig{Window: 1500}, workers)
				for qi, q := range queries {
					if err := pm.Register(fmt.Sprintf("q%d", qi), q, core.Config{
						Strategy: core.StrategyPathLazy, Stats: c,
					}); err != nil {
						b.Fatal(err)
					}
				}
				for _, e := range edges {
					pm.ProcessEdge(e)
				}
				pm.Close()
			}
			b.SetBytes(int64(len(edges)))
		})
	}
}

// BenchmarkSnapshotRoundTrip measures checkpointing a loaded engine.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	edges := datagen.Netflow(datagen.NetflowConfig{Edges: 8000, Hosts: 400, Seed: 4})
	c := selectivity.NewCollector()
	c.AddAll(edges)
	q := query.NewPath("ip", "TCP", "UDP", "ICMP")
	eng, err := core.New(q, core.Config{Strategy: core.StrategyPathLazy, Stats: c, Window: 2000})
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range edges {
		eng.ProcessEdge(e)
	}
	var buf bytes.Buffer
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := persist.Save(&buf, eng); err != nil {
			b.Fatal(err)
		}
		size = buf.Len()
		if _, err := persist.Load(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(size), "snapshot-bytes")
}

// BenchmarkPredicateEval measures the attribute filter hot path.
func BenchmarkPredicateEval(b *testing.B) {
	p := attr.MustPredicate("proto == TCP && dstPort < 1024 && bytes > 100")
	r := attr.Record{"proto": "TCP", "dstPort": "443", "bytes": "8800"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.Eval(r) {
			b.Fatal("predicate must hold")
		}
	}
}

// BenchmarkIngest measures the raw format readers.
func BenchmarkIngest(b *testing.B) {
	var csvBuf strings.Builder
	csvBuf.WriteString("ts,srcIP,dstIP,proto\n")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&csvBuf, "%d,10.0.%d.%d,10.1.%d.%d,TCP\n", i, i%250, (i*7)%250, (i*3)%250, (i*11)%250)
	}
	csvData := csvBuf.String()
	var ntBuf strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&ntBuf, "<http://ex/u%d> <http://ex/knows> <http://ex/u%d> .\n", i%500, (i*13)%500)
	}
	ntData := ntBuf.String()

	b.Run("csv", func(b *testing.B) {
		b.SetBytes(int64(len(csvData)))
		for i := 0; i < b.N; i++ {
			src, err := ingest.NewCSVSource(strings.NewReader(csvData), ingest.CSVConfig{Mapper: ingest.NetflowMapper(nil)})
			if err != nil {
				b.Fatal(err)
			}
			for {
				if _, err := src.Next(); err == io.EOF {
					break
				} else if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("ntriples", func(b *testing.B) {
		b.SetBytes(int64(len(ntData)))
		for i := 0; i < b.N; i++ {
			src := ingest.NewNTriplesSource(strings.NewReader(ntData), ingest.NTriplesConfig{})
			for {
				if _, err := src.Next(); err == io.EOF {
					break
				} else if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkHistogramRecord measures the latency-histogram hot path.
func BenchmarkHistogramRecord(b *testing.B) {
	var h metrics.Histogram
	for i := 0; i < b.N; i++ {
		h.Record(int64(i % 100000))
	}
	if h.Count() == 0 {
		b.Fatal("no samples")
	}
}

// BenchmarkCountMin measures sketch update and estimate costs.
func BenchmarkCountMin(b *testing.B) {
	b.Run("add-conservative", func(b *testing.B) {
		cm := sketch.NewCountMin(1<<16, 4, 1)
		cm.Conservative = true
		for i := 0; i < b.N; i++ {
			cm.Add(uint64(i%50000), 1)
		}
	})
	b.Run("estimate", func(b *testing.B) {
		cm := sketch.NewCountMin(1<<16, 4, 1)
		for i := 0; i < 50000; i++ {
			cm.Add(uint64(i), 1)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cm.Estimate(uint64(i % 50000))
		}
	})
}

// BenchmarkExactOptimizer measures the DP planner itself across query
// sizes (it runs once per registered query, not per edge).
func BenchmarkExactOptimizer(b *testing.B) {
	nf, _, _ := benchDatasets()
	stats := experiments.Collect(nf)
	p := &plan.Planner{Stats: stats, AvgDegree: stats.AvgDegreeEstimate()}
	rng := rand.New(rand.NewSource(7))
	for _, size := range []int{4, 6, 8, 10} {
		q := datagen.RandomPathQuery(rng, datagen.NetflowProtocols, size, "ip")
		b.Run(fmt.Sprintf("edges-%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := p.Optimal(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
